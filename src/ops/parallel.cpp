#include "ops/parallel.h"

#include <algorithm>
#include <vector>

#include "ops/wa_detail.h"
#include "tensor/dispatch.h"
#include "util/simd.h"

namespace xplace::ops {

using tensor::Dispatcher;

namespace {

/// Per-partition scratch reused across launches, owned by the calling thread
/// (thread_local so concurrent callers never share it). Buffers are zeroed
/// inside each partition's own task — in parallel — so the steady-state
/// per-iteration cost is a fill, not a round of heap allocations.
struct PartitionScratch {
  std::vector<std::vector<float>> gx, gy;  // per-partition cell gradients
  std::vector<std::vector<double>> bins;   // per-partition density maps
  std::vector<double> wa, hp;              // per-partition scalar sums
};

PartitionScratch& scratch() {
  static thread_local PartitionScratch s;
  return s;
}

template <typename T>
void ensure_buffers(std::vector<std::vector<T>>& bufs, std::size_t workers) {
  if (bufs.size() < workers) bufs.resize(workers);
}

}  // namespace

WirelengthSums fused_wl_grad_hpwl_mt(const NetlistView& v, const float* x,
                                     const float* y, float gamma,
                                     float* grad_x, float* grad_y,
                                     ThreadPool& pool) {
  WirelengthSums sums;
  // Same op name as the serial kernel: the backend changes how the kernel
  // runs, not which kernel runs, so launch-count contracts hold either way.
  Dispatcher::global().run("fused_wl_grad_hpwl", [&] {
    const float inv_gamma = 1.0f / gamma;
    const std::size_t workers = pool.size();
    const simd::Kernels& k = simd::active();
    if (workers <= 1 || v.num_nets < 256) {
      if (k.isa == simd::Isa::kScalar) {
        for (std::size_t e = 0; e < v.num_nets; ++e) {
          if (!v.net_mask[e]) continue;
          detail::fused_net(v, e, x, y, inv_gamma, grad_x, grad_y, sums.wa,
                            sums.hpwl);
        }
      } else {
        thread_local detail::WaBatchScratch sc;
        detail::fused_range_simd(k, v, 0, v.num_nets, x, y, inv_gamma, grad_x,
                                 grad_y, sums.wa, sums.hpwl, sc);
      }
      return;
    }
    const std::size_t n_cells = v.num_cells;
    auto& s = scratch();
    ensure_buffers(s.gx, workers);
    ensure_buffers(s.gy, workers);
    s.wa.assign(workers, 0.0);
    s.hp.assign(workers, 0.0);
    // Static partition: worker slot w owns nets [w·N/W, (w+1)·N/W) and a
    // private gradient buffer (grain 1 → exactly one task per slot).
    pool.parallel_for(
        workers,
        [&](std::size_t b, std::size_t e_, std::size_t) {
          for (std::size_t w = b; w < e_; ++w) {
            s.gx[w].assign(n_cells, 0.0f);
            s.gy[w].assign(n_cells, 0.0f);
            const std::size_t lo = w * v.num_nets / workers;
            const std::size_t hi = (w + 1) * v.num_nets / workers;
            if (k.isa == simd::Isa::kScalar) {
              for (std::size_t e = lo; e < hi; ++e) {
                if (!v.net_mask[e]) continue;
                detail::fused_net(v, e, x, y, inv_gamma, s.gx[w].data(),
                                  s.gy[w].data(), s.wa[w], s.hp[w]);
              }
            } else {
              // Vector lanes inside each worker's chunk; per-slot double
              // accumulators keep the slot-ordered reduction deterministic.
              thread_local detail::WaBatchScratch sc;
              detail::fused_range_simd(k, v, lo, hi, x, y, inv_gamma,
                                       s.gx[w].data(), s.gy[w].data(),
                                       s.wa[w], s.hp[w], sc);
            }
          }
        },
        /*grain=*/1);
    // Deterministic parallel reduction: every cell sums its partitions in
    // fixed slot order, regardless of which thread handles the cell.
    pool.parallel_for(n_cells, [&](std::size_t b, std::size_t e_, std::size_t) {
      for (std::size_t c = b; c < e_; ++c) {
        float ax = 0.0f, ay = 0.0f;
        for (std::size_t w = 0; w < workers; ++w) {
          ax += s.gx[w][c];
          ay += s.gy[w][c];
        }
        grad_x[c] += ax;
        grad_y[c] += ay;
      }
    });
    for (std::size_t w = 0; w < workers; ++w) {
      sums.wa += s.wa[w];
      sums.hpwl += s.hp[w];
    }
  });
  return sums;
}

namespace {

/// Shared core of the two parallel scatters: partitioned accumulation into
/// per-slot bin maps followed by a deterministic parallel bin reduction.
/// `cell_at(i)` maps a partition index in [0, count) to a cell id.
template <typename CellAt>
void scatter_partitioned(const DensityGrid& grid, const float* x,
                         const float* y, std::size_t count, double* map,
                         bool clear, ThreadPool& pool, CellAt&& cell_at) {
  const std::size_t workers = pool.size();
  const simd::Kernels& k = simd::active();
  auto& s = scratch();
  ensure_buffers(s.bins, workers);
  pool.parallel_for(
      workers,
      [&](std::size_t b, std::size_t e_, std::size_t) {
        for (std::size_t w = b; w < e_; ++w) {
          s.bins[w].assign(grid.num_bins(), 0.0);
          double* m = s.bins[w].data();
          const std::size_t lo = w * count / workers;
          const std::size_t hi = (w + 1) * count / workers;
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t c = cell_at(i);
            const double scale =
                grid.cell_density_scale(c) * grid.inv_bin_area();
            if (k.isa == simd::Isa::kScalar) {
              grid.for_each_overlap(c, x, y, [&](std::size_t bin, double ov) {
                m[bin] += ov * scale;
              });
            } else {
              grid.scatter_one(k, c, x, y, scale, m);
            }
          }
        }
      },
      /*grain=*/1);
  // Each bin folds its partitions in fixed slot order — deterministic and
  // matching the historical serial reduction order (base + p0 + p1 + …).
  pool.parallel_for(grid.num_bins(),
                    [&](std::size_t b, std::size_t e_, std::size_t) {
                      for (std::size_t bin = b; bin < e_; ++bin) {
                        double acc = clear ? 0.0 : map[bin];
                        for (std::size_t w = 0; w < workers; ++w) {
                          acc += s.bins[w][bin];
                        }
                        map[bin] = acc;
                      }
                    });
}

}  // namespace

void accumulate_range_mt(const DensityGrid& grid, const char* opname,
                         const float* x, const float* y, std::size_t begin,
                         std::size_t end, double* map, bool clear,
                         ThreadPool& pool) {
  Dispatcher::global().run(opname, [&] {
    const std::size_t count = end - begin;
    if (pool.size() <= 1 || count < 512) {
      if (clear) std::fill(map, map + grid.num_bins(), 0.0);
      for (std::size_t c = begin; c < end; ++c) {
        const double scale = grid.cell_density_scale(c) * grid.inv_bin_area();
        grid.for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
          map[bin] += overlap * scale;
        });
      }
      return;
    }
    scatter_partitioned(grid, x, y, count, map, clear, pool,
                        [begin](std::size_t i) { return begin + i; });
  });
}

void accumulate_cells_mt(const DensityGrid& grid, const char* opname,
                         const float* x, const float* y,
                         const std::vector<std::uint32_t>& cells, double* map,
                         bool clear, ThreadPool& pool) {
  Dispatcher::global().run(opname, [&] {
    if (pool.size() <= 1 || cells.size() < 512) {
      if (clear) std::fill(map, map + grid.num_bins(), 0.0);
      for (const std::uint32_t c : cells) {
        const double scale = grid.cell_density_scale(c) * grid.inv_bin_area();
        grid.for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
          map[bin] += overlap * scale;
        });
      }
      return;
    }
    scatter_partitioned(grid, x, y, cells.size(), map, clear, pool,
                        [&cells](std::size_t i) { return cells[i]; });
  });
}

void gather_field_mt(const DensityGrid& grid, const char* opname,
                     const float* x, const float* y, std::size_t begin,
                     std::size_t end, const double* ex, const double* ey,
                     float coeff, float* grad_x, float* grad_y,
                     ThreadPool& pool) {
  Dispatcher::global().run(opname, [&] {
    // Each cell owns its gradient slot: direct parallel write is safe.
    const simd::Kernels& k = simd::active();
    pool.parallel_for(end - begin, [&](std::size_t b, std::size_t e_, std::size_t) {
      for (std::size_t i = b; i < e_; ++i) {
        const std::size_t c = begin + i;
        double fx = 0.0, fy = 0.0;
        if (k.isa == simd::Isa::kScalar) {
          grid.for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
            fx += overlap * ex[bin];
            fy += overlap * ey[bin];
          });
        } else {
          grid.gather_one(k, c, x, y, ex, ey, &fx, &fy);
        }
        const double q = grid.cell_density_scale(c) * grid.inv_bin_area();
        grad_x[c] += coeff * static_cast<float>(q * fx);
        grad_y[c] += coeff * static_cast<float>(q * fy);
      }
    });
  });
}

void gather_field_cells_mt(const DensityGrid& grid, const char* opname,
                           const float* x, const float* y,
                           const std::vector<std::uint32_t>& cells,
                           const double* ex, const double* ey, float coeff,
                           float* grad_x, float* grad_y, ThreadPool& pool) {
  Dispatcher::global().run(opname, [&] {
    // Fence-system cell lists are disjoint per call and each cell owns its
    // gradient slot, so direct parallel writes are safe here too.
    const simd::Kernels& k = simd::active();
    pool.parallel_for(cells.size(),
                      [&](std::size_t b, std::size_t e_, std::size_t) {
                        for (std::size_t i = b; i < e_; ++i) {
                          const std::size_t c = cells[i];
                          double fx = 0.0, fy = 0.0;
                          if (k.isa == simd::Isa::kScalar) {
                            grid.for_each_overlap(
                                c, x, y, [&](std::size_t bin, double overlap) {
                                  fx += overlap * ex[bin];
                                  fy += overlap * ey[bin];
                                });
                          } else {
                            grid.gather_one(k, c, x, y, ex, ey, &fx, &fy);
                          }
                          const double q = grid.cell_density_scale(c) *
                                           grid.inv_bin_area();
                          grad_x[c] += coeff * static_cast<float>(q * fx);
                          grad_y[c] += coeff * static_cast<float>(q * fy);
                        }
                      });
  });
}

}  // namespace xplace::ops
