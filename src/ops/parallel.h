// Multi-threaded variants of the heavy placement kernels.
//
// The GPU placer distributes per-net / per-cell work across CUDA threads; on
// a multi-core host the same kernels are statically partitioned across a
// ThreadPool:
//   * nets are split into one contiguous range per worker; each worker
//     scatters gradients into its own buffer; buffers are reduced in worker
//     order — results are bitwise-deterministic for a fixed pool size and
//     agree with the serial kernels to float accumulation order,
//   * the density scatter uses per-worker bin maps (reduced the same way),
//   * the field gather is embarrassingly parallel (each cell's gradient slot
//     is written by exactly one worker).
//
// Each *_mt call still counts as one dispatcher launch: it models one fat
// kernel, not many. The fused wirelength kernel launches under the SAME op
// name as its serial twin ("fused_wl_grad_hpwl") — the backend choice changes
// how the kernel runs, not which kernel runs, so launch-count contracts hold
// for either backend. Per-partition scratch persists across launches
// (thread_local to the caller) and is zeroed inside each partition's own
// task, keeping the steady-state path allocation-free.
#pragma once

#include "ops/density.h"
#include "ops/netlist_view.h"
#include "ops/wirelength.h"
#include "util/thread_pool.h"

namespace xplace::ops {

/// Parallel fused WA-wirelength + gradient + HPWL (operator combination).
WirelengthSums fused_wl_grad_hpwl_mt(const NetlistView& view, const float* x,
                                     const float* y, float gamma,
                                     float* grad_x, float* grad_y,
                                     ThreadPool& pool);

/// Parallel density scatter of cells [begin, end) into `map`.
void accumulate_range_mt(const DensityGrid& grid, const char* opname,
                         const float* x, const float* y, std::size_t begin,
                         std::size_t end, double* map, bool clear,
                         ThreadPool& pool);

/// Parallel density scatter of an explicit cell list (the members of one
/// fence-region system in the multi-electrostatics path).
void accumulate_cells_mt(const DensityGrid& grid, const char* opname,
                         const float* x, const float* y,
                         const std::vector<std::uint32_t>& cells, double* map,
                         bool clear, ThreadPool& pool);

/// Parallel field gather (adjoint of the scatter).
void gather_field_mt(const DensityGrid& grid, const char* opname,
                     const float* x, const float* y, std::size_t begin,
                     std::size_t end, const double* ex, const double* ey,
                     float coeff, float* grad_x, float* grad_y,
                     ThreadPool& pool);

/// Parallel field gather for an explicit cell list (fence-region systems).
void gather_field_cells_mt(const DensityGrid& grid, const char* opname,
                           const float* x, const float* y,
                           const std::vector<std::uint32_t>& cells,
                           const double* ex, const double* ey, float coeff,
                           float* grad_x, float* grad_y, ThreadPool& pool);

}  // namespace xplace::ops
