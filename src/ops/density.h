// Bin density map operators (Equations (7)–(10) of the paper).
//
// The grid splits the placement region into M×M bins. Cells scatter their
// area into overlapped bins (Equation (8)); following ePlace, cells smaller
// than √2·bin are expanded to √2·bin per dimension with their density scaled
// by the area ratio (local smoothing), and fixed cells contribute with their
// density capped at the target density so fully-blocked bins exert no net
// force and add no overflow.
//
// Xplace's *operator extraction* (Section 3.1.2) computes the movable map D
// and the filler map D_fl separately, reusing D for the overflow metric and
// forming the electrostatic map as D̃ = D + D_fl with one elementwise add.
// The un-extracted baseline accumulates D̃ jointly and then re-accumulates D
// for the overflow, duplicating the movable+fixed scatter. Both paths are
// exposed here so the ablation measures the real cost difference.
//
// Map layout: row-major `map[ix * m + iy]`, dimension 0 = x.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "db/database.h"
#include "util/simd.h"

namespace xplace::ops {

class DensityGrid {
 public:
  /// Must be constructed after fillers are inserted (footprints are cached
  /// for every cell id). `m` must be a power of two for the Poisson solver.
  DensityGrid(const db::Database& db, int m);

  int m() const { return m_; }
  double bin_w() const { return bin_w_; }
  double bin_h() const { return bin_h_; }
  double bin_area() const { return bin_w_ * bin_h_; }
  std::size_t num_bins() const { return static_cast<std::size_t>(m_) * m_; }

  /// Scatter cells [begin, end) into `map` (adds; optionally clears first).
  /// Positions are center coordinates indexed by cell id. One kernel launch
  /// under `opname`.
  void accumulate_range(const char* opname, const float* x, const float* y,
                        std::size_t begin, std::size_t end, double* map,
                        bool clear) const;

  /// Scatter an explicit list of cells (multi-electrostatics: the members of
  /// one fence region's system). One kernel launch.
  void accumulate_cells(const char* opname, const float* x, const float* y,
                        const std::vector<std::uint32_t>& cells, double* map,
                        bool clear) const;

  /// Overflow ratio (Equation (7)) from the physical-cell density map D.
  /// One kernel launch.
  double overflow(const double* density_map) const;

  /// Σ_b max(D_b − D_t, 0)·A_b — the numerator of Eq. (7); used to aggregate
  /// overflow across fence-region systems. One kernel launch.
  double overflow_area(const double* density_map) const;

  /// Gather a field map to per-cell gradients:
  ///   grad[c] += coeff * Σ_b overlap(c,b)/A_b * E_b * A_c_scale
  /// for cells [begin, end). Uses the same (smoothed) footprints as the
  /// scatter, making the gather the exact adjoint. One kernel launch.
  void gather_field(const char* opname, const float* x, const float* y,
                    std::size_t begin, std::size_t end, const double* ex,
                    const double* ey, float coeff, float* grad_x,
                    float* grad_y) const;

  /// Gather for an explicit cell list (fence-region systems).
  void gather_field_cells(const char* opname, const float* x, const float* y,
                          const std::vector<std::uint32_t>& cells,
                          const double* ex, const double* ey, float coeff,
                          float* grad_x, float* grad_y) const;

  double target_density() const { return target_density_; }

  /// Sum of all density*binArea over a map (diagnostics: should equal the
  /// scaled cell area scattered into it).
  double total_area(const double* map) const;

  /// Visits every (bin, overlap_area) pair of a cell's (smoothed) footprint.
  /// Public so the multi-threaded kernel variants (ops/parallel.h) can reuse
  /// the exact same footprint math.
  template <typename Fn>
  void for_each_overlap(std::size_t cell, const float* x, const float* y,
                        Fn&& fn) const {
    const double lx = x[cell] - half_w_[cell], hx = x[cell] + half_w_[cell];
    const double ly = y[cell] - half_h_[cell], hy = y[cell] + half_h_[cell];
    int bx0 = static_cast<int>(std::floor((lx - region_lx_) * inv_bin_w_));
    int bx1 = static_cast<int>(std::floor((hx - region_lx_) * inv_bin_w_));
    int by0 = static_cast<int>(std::floor((ly - region_ly_) * inv_bin_h_));
    int by1 = static_cast<int>(std::floor((hy - region_ly_) * inv_bin_h_));
    bx0 = std::clamp(bx0, 0, m_ - 1);
    bx1 = std::clamp(bx1, 0, m_ - 1);
    by0 = std::clamp(by0, 0, m_ - 1);
    by1 = std::clamp(by1, 0, m_ - 1);
    for (int bx = bx0; bx <= bx1; ++bx) {
      const double bin_lx = region_lx_ + bx * bin_w_;
      const double ow = std::min(hx, bin_lx + bin_w_) - std::max(lx, bin_lx);
      if (ow <= 0.0) continue;
      for (int by = by0; by <= by1; ++by) {
        const double bin_ly = region_ly_ + by * bin_h_;
        const double oh = std::min(hy, bin_ly + bin_h_) - std::max(ly, bin_ly);
        if (oh <= 0.0) continue;
        fn(static_cast<std::size_t>(bx) * m_ + by, ow * oh);
      }
    }
  }

  /// Vector-lane scatter of one cell's footprint. In the bx·m+by layout each
  /// bx column of the footprint is one contiguous by-run, handed to the
  /// active backend's span kernel (8/4 bins per step). Value-equivalent to
  /// the for_each_overlap loop (clamped overlaps contribute exactly 0).
  void scatter_one(const simd::Kernels& k, std::size_t cell, const float* x,
                   const float* y, double scale, double* map) const {
    const double lx = x[cell] - half_w_[cell], hx = x[cell] + half_w_[cell];
    const double ly = y[cell] - half_h_[cell], hy = y[cell] + half_h_[cell];
    int bx0 = static_cast<int>(std::floor((lx - region_lx_) * inv_bin_w_));
    int bx1 = static_cast<int>(std::floor((hx - region_lx_) * inv_bin_w_));
    int by0 = static_cast<int>(std::floor((ly - region_ly_) * inv_bin_h_));
    int by1 = static_cast<int>(std::floor((hy - region_ly_) * inv_bin_h_));
    bx0 = std::clamp(bx0, 0, m_ - 1);
    bx1 = std::clamp(bx1, 0, m_ - 1);
    by0 = std::clamp(by0, 0, m_ - 1);
    by1 = std::clamp(by1, 0, m_ - 1);
    const std::size_t span = static_cast<std::size_t>(by1 - by0) + 1;
    const double ly0 = region_ly_ + by0 * bin_h_;
    for (int bx = bx0; bx <= bx1; ++bx) {
      const double bin_lx = region_lx_ + bx * bin_w_;
      const double ow = std::min(hx, bin_lx + bin_w_) - std::max(lx, bin_lx);
      if (ow <= 0.0) continue;
      k.span_scatter(map + static_cast<std::size_t>(bx) * m_ + by0, span, ly,
                     hy, ly0, bin_h_, ow * scale);
    }
  }

  /// Vector-lane field gather of one cell's footprint (adjoint of
  /// scatter_one); accumulates Σ overlap·E into *fx/*fy.
  void gather_one(const simd::Kernels& k, std::size_t cell, const float* x,
                  const float* y, const double* ex, const double* ey,
                  double* fx, double* fy) const {
    const double lx = x[cell] - half_w_[cell], hx = x[cell] + half_w_[cell];
    const double ly = y[cell] - half_h_[cell], hy = y[cell] + half_h_[cell];
    int bx0 = static_cast<int>(std::floor((lx - region_lx_) * inv_bin_w_));
    int bx1 = static_cast<int>(std::floor((hx - region_lx_) * inv_bin_w_));
    int by0 = static_cast<int>(std::floor((ly - region_ly_) * inv_bin_h_));
    int by1 = static_cast<int>(std::floor((hy - region_ly_) * inv_bin_h_));
    bx0 = std::clamp(bx0, 0, m_ - 1);
    bx1 = std::clamp(bx1, 0, m_ - 1);
    by0 = std::clamp(by0, 0, m_ - 1);
    by1 = std::clamp(by1, 0, m_ - 1);
    const std::size_t span = static_cast<std::size_t>(by1 - by0) + 1;
    const double ly0 = region_ly_ + by0 * bin_h_;
    for (int bx = bx0; bx <= bx1; ++bx) {
      const double bin_lx = region_lx_ + bx * bin_w_;
      const double ow = std::min(hx, bin_lx + bin_w_) - std::max(lx, bin_lx);
      if (ow <= 0.0) continue;
      const std::size_t row = static_cast<std::size_t>(bx) * m_ + by0;
      k.span_gather(ex + row, ey + row, span, ly, hy, ly0, bin_h_, ow, fx, fy);
    }
  }

  /// Per-cell density weight (smoothing ratio, or target density for fixed).
  double cell_density_scale(std::size_t cell) const { return dens_scale_[cell]; }
  double inv_bin_area() const { return inv_bin_area_; }

 private:
  int m_;
  double region_lx_, region_ly_;
  double bin_w_, bin_h_;
  double inv_bin_w_, inv_bin_h_;
  double inv_bin_area_;
  double target_density_;
  double total_movable_area_;

  // Per-cell cached footprints (expanded half-sizes + density scale).
  std::vector<float> half_w_, half_h_, dens_scale_;
};

}  // namespace xplace::ops
