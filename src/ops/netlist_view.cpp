#include "ops/netlist_view.h"

namespace xplace::ops {

NetlistView build_netlist_view(const db::Database& db) {
  NetlistView v;
  v.num_cells = db.num_physical();
  v.num_movable = db.num_movable();
  v.num_nets = db.num_nets();
  v.num_pins = db.num_pins();
  v.net_start.resize(v.num_nets + 1);
  for (std::size_t e = 0; e <= v.num_nets; ++e) {
    v.net_start[e] = static_cast<std::uint32_t>(
        e < v.num_nets ? db.net_pin_start(e) : db.num_pins());
  }
  v.pin_cell.resize(v.num_pins);
  v.pin_net.resize(v.num_pins);
  v.pin_ox.resize(v.num_pins);
  v.pin_oy.resize(v.num_pins);
  for (std::size_t p = 0; p < v.num_pins; ++p) {
    v.pin_cell[p] = static_cast<std::uint32_t>(db.pin_cell(p));
    v.pin_net[p] = db.pin_net(p);
    v.pin_ox[p] = static_cast<float>(db.pin_offset_x(p));
    v.pin_oy[p] = static_cast<float>(db.pin_offset_y(p));
  }
  v.net_weight.resize(v.num_nets);
  v.net_mask.resize(v.num_nets);
  for (std::size_t e = 0; e < v.num_nets; ++e) {
    v.net_weight[e] = static_cast<float>(db.net_weight(e));
    v.net_mask[e] = db.net_degree(e) >= 2 ? 1 : 0;
  }
  return v;
}

}  // namespace xplace::ops
