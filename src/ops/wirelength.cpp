#include "ops/wirelength.h"

#include "ops/wa_detail.h"
#include "tensor/dispatch.h"
#include "util/simd.h"

namespace xplace::ops {
namespace {
using tensor::Dispatcher;
using namespace detail;
}  // namespace

WirelengthSums fused_wl_grad_hpwl(const NetlistView& v, const float* x,
                                  const float* y, float gamma, float* grad_x,
                                  float* grad_y) {
  WirelengthSums sums;
  Dispatcher::global().run("fused_wl_grad_hpwl", [&] {
    const float inv_gamma = 1.0f / gamma;
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t e = 0; e < v.num_nets; ++e) {
        if (!v.net_mask[e]) continue;
        fused_net(v, e, x, y, inv_gamma, grad_x, grad_y, sums.wa, sums.hpwl);
      }
      return;
    }
    thread_local WaBatchScratch sc;
    fused_range_simd(k, v, 0, v.num_nets, x, y, inv_gamma, grad_x, grad_y,
                     sums.wa, sums.hpwl, sc);
  });
  return sums;
}

double wa_wirelength(const NetlistView& v, const float* x, const float* y,
                     float gamma) {
  double wl = 0.0;
  Dispatcher::global().run("wa_wirelength", [&] {
    const float inv_gamma = 1.0f / gamma;
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t e = 0; e < v.num_nets; ++e) {
        if (!v.net_mask[e]) continue;
        const NetExtent ext = net_extent(v, e, x, y);
        const WaTerms tx = wa_terms(v, e, x, v.pin_ox.data(), ext.min_x,
                                    ext.max_x, inv_gamma);
        const WaTerms ty = wa_terms(v, e, y, v.pin_oy.data(), ext.min_y,
                                    ext.max_y, inv_gamma);
        wl += static_cast<double>(v.net_weight[e]) * (tx.wl() + ty.wl());
      }
      return;
    }
    thread_local WaBatchScratch sc;
    double hpwl_unused = 0.0;
    wa_range_simd<false, true, false>(k, v, 0, v.num_nets, x, y, inv_gamma,
                                      nullptr, nullptr, wl, hpwl_unused, sc);
  });
  return wl;
}

void wa_gradient(const NetlistView& v, const float* x, const float* y,
                 float gamma, float* grad_x, float* grad_y) {
  Dispatcher::global().run("wa_gradient", [&] {
    const float inv_gamma = 1.0f / gamma;
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t e = 0; e < v.num_nets; ++e) {
        if (!v.net_mask[e]) continue;
        const float w = v.net_weight[e];
        const NetExtent ext = net_extent(v, e, x, y);
        const WaTerms tx = wa_terms(v, e, x, v.pin_ox.data(), ext.min_x,
                                    ext.max_x, inv_gamma);
        const WaTerms ty = wa_terms(v, e, y, v.pin_oy.data(), ext.min_y,
                                    ext.max_y, inv_gamma);
        wa_scatter(v, e, x, v.pin_ox.data(), ext.min_x, ext.max_x, inv_gamma,
                   tx, w, grad_x);
        wa_scatter(v, e, y, v.pin_oy.data(), ext.min_y, ext.max_y, inv_gamma,
                   ty, w, grad_y);
      }
      return;
    }
    thread_local WaBatchScratch sc;
    double wa_unused = 0.0, hpwl_unused = 0.0;
    wa_range_simd<true, false, false>(k, v, 0, v.num_nets, x, y, inv_gamma,
                                      grad_x, grad_y, wa_unused, hpwl_unused,
                                      sc);
  });
}

double hpwl(const NetlistView& v, const float* x, const float* y) {
  double total = 0.0;
  Dispatcher::global().run("hpwl", [&] {
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t e = 0; e < v.num_nets; ++e) {
        if (!v.net_mask[e]) continue;
        const NetExtent ext = net_extent(v, e, x, y);
        total += static_cast<double>(v.net_weight[e]) *
                 ((ext.max_x - ext.min_x) + (ext.max_y - ext.min_y));
      }
      return;
    }
    thread_local WaBatchScratch sc;
    double wa_unused = 0.0;
    wa_range_simd<false, false, true>(k, v, 0, v.num_nets, x, y, 0.0f,
                                      nullptr, nullptr, wa_unused, total, sc);
  });
  return total;
}

}  // namespace xplace::ops
