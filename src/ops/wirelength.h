// Weighted-average (WA) wirelength operators — Equations (4)/(6) of the
// paper — at three fusion levels:
//
//   * `fused_wl_grad_hpwl` — Xplace's *operator combination* (Section 3.1.1):
//     one kernel computes the numerically-stable WA wirelength, its analytic
//     gradient, and the exact HPWL, sharing the per-net min/max scan.
//   * `wa_wirelength` / `wa_gradient` / `hpwl` — DREAMPlace-style separate
//     kernels (each re-derives the min/max it needs). Used by the ablation
//     tier with operator reduction ON but combination OFF.
//   * the tape-decomposed elementary-op implementation lives in
//     wirelength_tape.h (operator reduction OFF).
//
// Gradient convention: gradients of Σ_e w_e·WL_e(p) with respect to cell
// centers are *accumulated* into grad_x/grad_y (callers zero them first).
// The per-net max/min positions are treated as constants when differentiating
// (standard WA practice); the stable form used is
//   dWLmax/dx_i = s_i (1 + (x_i - WLmax)/γ) / S,
//   dWLmin/dx_i = u_i (1 - (x_i - WLmin)/γ) / U.
#pragma once

#include "ops/netlist_view.h"

namespace xplace::ops {

struct WirelengthSums {
  double wa = 0.0;    ///< Σ_e w_e (WL_e(x) + WL_e(y))
  double hpwl = 0.0;  ///< Σ_e w_e HPWL_e
};

/// One fused kernel: WA wirelength + gradient + HPWL (operator combination).
WirelengthSums fused_wl_grad_hpwl(const NetlistView& view, const float* x,
                                  const float* y, float gamma, float* grad_x,
                                  float* grad_y);

/// WA wirelength only (separate kernel, own min/max scan).
double wa_wirelength(const NetlistView& view, const float* x, const float* y,
                     float gamma);

/// WA gradient only (separate kernel, own min/max scan).
void wa_gradient(const NetlistView& view, const float* x, const float* y,
                 float gamma, float* grad_x, float* grad_y);

/// Exact HPWL (separate kernel, own min/max scan).
double hpwl(const NetlistView& view, const float* x, const float* y);

}  // namespace xplace::ops
