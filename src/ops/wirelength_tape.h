// Elementary-operator (PyTorch-style) WA wirelength with tape autograd.
//
// This models how a placer built from stock framework operators executes: the
// forward pass is ~14 small kernels per direction (gather, segment min/max,
// broadcast-subtract, exp, multiply, four segment sums, divide, reduce) and
// the autograd engine replays ~12 backward kernels per direction. Xplace's
// *operator reduction* (Section 3.1.3) removes all of this by computing the
// numerical gradient directly; the ablation tier with OR disabled runs this
// implementation so the launch-count contrast is measured, not asserted.
//
// The decomposition is mathematically identical to ops::wa_gradient: per-net
// max/min are detached (treated as constants) exactly as in the stable-WA
// formulation.
#pragma once

#include <vector>

#include "ops/netlist_view.h"
#include "tensor/tape.h"

namespace xplace::ops {

class TapeWirelength {
 public:
  explicit TapeWirelength(const NetlistView& view);

  /// Forward: returns Σ_e w_e (WL_e(x)+WL_e(y)) and records backward nodes on
  /// `tape`. When tape.backward() later runs, gradients are *accumulated*
  /// into grad_x / grad_y (which must stay alive until then).
  double forward(tensor::Tape& tape, const float* x, const float* y,
                 float gamma, float* grad_x, float* grad_y);

  /// Separate HPWL operator (two launches: segment min/max + weighted reduce),
  /// as a stock implementation would issue it.
  double hpwl_op(const float* x, const float* y);

 private:
  struct DirScratch {
    std::vector<float> pin_pos;        // gathered pin coordinates
    std::vector<float> net_min, net_max;
    std::vector<float> a, b;           // (pos-max)/γ, (min-pos)/γ
    std::vector<float> ea, eb;         // exp(a), exp(b)
    std::vector<float> xea, xeb;       // pos*ea, pos*eb
    std::vector<double> sea, seb, sxea, sxeb;  // per-net segment sums
    std::vector<float> wl_net;
    // backward scratch
    std::vector<double> d_sxea, d_sea, d_sxeb, d_seb;
    std::vector<float> d_pin, d_ea, d_eb, d_a, d_b, d_xea, d_xeb;
    void resize(std::size_t pins, std::size_t nets);
  };

  double forward_dir(tensor::Tape& tape, const float* pos, const float* off,
                     float inv_gamma, float* grad, DirScratch& s);

  const NetlistView& view_;
  DirScratch sx_, sy_;
};

}  // namespace xplace::ops
