// Spectral solver for the ePlace electrostatic system (Equation (5)):
//
//   ∇·∇ψ = −ρ,   n̂·∇ψ = 0 on ∂R,   ∬ρ = ∬ψ = 0.
//
// With Neumann boundary conditions the density expands in the cosine basis
// cos(w_u x)cos(w_v y), w_u = πu/(M·h_x); the Poisson equation diagonalizes,
// and the field components come back through mixed sine/cosine syntheses:
//
//   a     = dct2(ρ̄)                     (ρ̄ = ρ with mean removed)
//   ψ̂_uv  = a_uv / (w_u² + w_v²)
//   ψ     = idct2(ψ̂)
//   E_x   = idxst_idct(ψ̂ ⊙ w_u)         (E = −∇ψ)
//   E_y   = idct_idxst(ψ̂ ⊙ w_v)
//
// Xplace's operator-reduction path (Section 3.1.3) skips ψ entirely — only
// three transforms per iteration. The baseline path additionally synthesizes
// ψ to evaluate the potential energy the autograd formulation differentiates.
#pragma once

#include <cstddef>
#include <vector>

#include "fft/plan.h"

namespace xplace {
class ThreadPool;
}

namespace xplace::ops {

class PoissonSolver {
 public:
  PoissonSolver(int m, double bin_w, double bin_h);

  /// Solve for the field (and optionally the potential) of an m×m density
  /// map. Results are valid until the next solve() call.
  void solve(const double* rho, bool want_potential);

  /// Optional worker pool for the 2-D transforms and the spectral scaling.
  /// Null (the default) keeps the historical serial path; the pooled result
  /// is bitwise-identical for any worker count (disjoint writes, no
  /// reductions).
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  const std::vector<double>& ex() const { return ex_; }
  const std::vector<double>& ey() const { return ey_; }
  const std::vector<double>& psi() const { return psi_; }

  /// Mutable views of the synthesized field grids. The gradient engine's
  /// density passes scale the field in place by λ·q_i factors before
  /// scattering it back to cells; exposing that intent here beats the
  /// const_cast it previously used.
  std::vector<double>& mutable_ex() { return ex_; }
  std::vector<double>& mutable_ey() { return ey_; }

  /// Potential energy 0.5·Σ_b ρ_b ψ_b (requires want_potential=true on the
  /// preceding solve).
  double energy(const double* rho) const;

  int m() const { return m_; }

 private:
  int m_;
  ThreadPool* pool_ = nullptr;       // not owned; null = serial
  std::vector<double> wu_, wv_;      // angular frequencies per index
  std::vector<double> coeff_;        // scratch: DCT coefficients
  std::vector<double> ex_, ey_, psi_;
  fft::PlanScratch scratch_;         // per-worker FFT scratch, reused forever
};

}  // namespace xplace::ops
