#include "ops/wirelength_tape.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/dispatch.h"

namespace xplace::ops {
namespace {
using tensor::Dispatcher;
}

void TapeWirelength::DirScratch::resize(std::size_t pins, std::size_t nets) {
  pin_pos.resize(pins);
  net_min.resize(nets);
  net_max.resize(nets);
  a.resize(pins);
  b.resize(pins);
  ea.resize(pins);
  eb.resize(pins);
  xea.resize(pins);
  xeb.resize(pins);
  sea.resize(nets);
  seb.resize(nets);
  sxea.resize(nets);
  sxeb.resize(nets);
  wl_net.resize(nets);
  d_sxea.resize(nets);
  d_sea.resize(nets);
  d_sxeb.resize(nets);
  d_seb.resize(nets);
  d_pin.resize(pins);
  d_ea.resize(pins);
  d_eb.resize(pins);
  d_a.resize(pins);
  d_b.resize(pins);
  d_xea.resize(pins);
  d_xeb.resize(pins);
}

TapeWirelength::TapeWirelength(const NetlistView& view) : view_(view) {
  sx_.resize(view.num_pins, view.num_nets);
  sy_.resize(view.num_pins, view.num_nets);
}

double TapeWirelength::forward_dir(tensor::Tape& tape, const float* pos,
                                   const float* off, float inv_gamma,
                                   float* grad, DirScratch& s) {
  auto& disp = Dispatcher::global();
  const NetlistView& v = view_;
  const std::size_t pins = v.num_pins, nets = v.num_nets;

  // -------- forward elementary kernels --------
  disp.run("wl.gather_pin_pos", [&] {
    for (std::size_t p = 0; p < pins; ++p) s.pin_pos[p] = pos[v.pin_cell[p]] + off[p];
  });
  disp.run("wl.segment_max", [&] {
    std::fill(s.net_max.begin(), s.net_max.end(),
              std::numeric_limits<float>::lowest());
    for (std::size_t p = 0; p < pins; ++p) {
      s.net_max[v.pin_net[p]] = std::max(s.net_max[v.pin_net[p]], s.pin_pos[p]);
    }
  });
  disp.run("wl.segment_min", [&] {
    std::fill(s.net_min.begin(), s.net_min.end(),
              std::numeric_limits<float>::max());
    for (std::size_t p = 0; p < pins; ++p) {
      s.net_min[v.pin_net[p]] = std::min(s.net_min[v.pin_net[p]], s.pin_pos[p]);
    }
  });
  disp.run("wl.sub_div_max", [&] {
    for (std::size_t p = 0; p < pins; ++p)
      s.a[p] = (s.pin_pos[p] - s.net_max[v.pin_net[p]]) * inv_gamma;
  });
  disp.run("wl.sub_div_min", [&] {
    for (std::size_t p = 0; p < pins; ++p)
      s.b[p] = (s.net_min[v.pin_net[p]] - s.pin_pos[p]) * inv_gamma;
  });
  disp.run("wl.exp_max", [&] {
    for (std::size_t p = 0; p < pins; ++p) s.ea[p] = std::exp(s.a[p]);
  });
  disp.run("wl.exp_min", [&] {
    for (std::size_t p = 0; p < pins; ++p) s.eb[p] = std::exp(s.b[p]);
  });
  disp.run("wl.mul_max", [&] {
    for (std::size_t p = 0; p < pins; ++p) s.xea[p] = s.pin_pos[p] * s.ea[p];
  });
  disp.run("wl.mul_min", [&] {
    for (std::size_t p = 0; p < pins; ++p) s.xeb[p] = s.pin_pos[p] * s.eb[p];
  });
  auto segment_sum = [&](const char* name, const std::vector<float>& src,
                         std::vector<double>& dst) {
    disp.run(name, [&] {
      std::fill(dst.begin(), dst.end(), 0.0);
      for (std::size_t p = 0; p < pins; ++p) dst[v.pin_net[p]] += src[p];
    });
  };
  segment_sum("wl.segsum_ea", s.ea, s.sea);
  segment_sum("wl.segsum_eb", s.eb, s.seb);
  segment_sum("wl.segsum_xea", s.xea, s.sxea);
  segment_sum("wl.segsum_xeb", s.xeb, s.sxeb);
  disp.run("wl.div_sub", [&] {
    for (std::size_t e = 0; e < nets; ++e) {
      s.wl_net[e] = v.net_mask[e]
                        ? static_cast<float>(s.sxea[e] / s.sea[e] -
                                             s.sxeb[e] / s.seb[e])
                        : 0.0f;
    }
  });
  double wl = 0.0;
  disp.run("wl.weighted_reduce", [&] {
    for (std::size_t e = 0; e < nets; ++e)
      wl += static_cast<double>(v.net_weight[e]) * s.wl_net[e];
  });

  // -------- backward nodes (replayed in reverse by the tape) --------
  // Recorded in forward order; Tape::backward() runs them last-to-first, so
  // the scatter (recorded first) executes last.
  tape.record("wl.gather_pin_pos", [this, grad, &s] {
    const NetlistView& view = view_;
    for (std::size_t p = 0; p < view.num_pins; ++p)
      grad[view.pin_cell[p]] += s.d_pin[p];
  });
  tape.record("wl.sub_div", [this, inv_gamma, &s] {
    // d_pin += d_a/γ − d_b/γ (max path positive, min path negative).
    for (std::size_t p = 0; p < view_.num_pins; ++p)
      s.d_pin[p] += (s.d_a[p] - s.d_b[p]) * inv_gamma;
  });
  tape.record("wl.exp", [this, &s] {
    for (std::size_t p = 0; p < view_.num_pins; ++p) {
      s.d_a[p] = s.d_ea[p] * s.ea[p];
      s.d_b[p] = s.d_eb[p] * s.eb[p];
    }
  });
  tape.record("wl.mul", [this, &s] {
    // xea = pin_pos * ea  ⇒  d_pin += d_xea*ea ; d_ea += d_xea*pin_pos.
    for (std::size_t p = 0; p < view_.num_pins; ++p) {
      s.d_pin[p] = s.d_xea[p] * s.ea[p] + s.d_xeb[p] * s.eb[p];
      s.d_ea[p] += s.d_xea[p] * s.pin_pos[p];
      s.d_eb[p] += s.d_xeb[p] * s.pin_pos[p];
    }
  });
  tape.record("wl.segsum", [this, &s] {
    // Segment-sum backward: broadcast per-net adjoints to pins.
    const NetlistView& view = view_;
    for (std::size_t p = 0; p < view.num_pins; ++p) {
      const std::uint32_t e = view.pin_net[p];
      s.d_xea[p] = static_cast<float>(s.d_sxea[e]);
      s.d_ea[p] = static_cast<float>(s.d_sea[e]);
      s.d_xeb[p] = static_cast<float>(s.d_sxeb[e]);
      s.d_eb[p] = static_cast<float>(s.d_seb[e]);
    }
  });
  tape.record("wl.div_sub", [this, &s] {
    // wl_e = sxea/sea − sxeb/seb with upstream adjoint w_e.
    const NetlistView& view = view_;
    for (std::size_t e = 0; e < view.num_nets; ++e) {
      if (!view.net_mask[e]) {
        s.d_sxea[e] = s.d_sea[e] = s.d_sxeb[e] = s.d_seb[e] = 0.0;
        continue;
      }
      const double w = view.net_weight[e];
      s.d_sxea[e] = w / s.sea[e];
      s.d_sea[e] = -w * (s.sxea[e] / s.sea[e]) / s.sea[e];
      s.d_sxeb[e] = -w / s.seb[e];
      s.d_seb[e] = w * (s.sxeb[e] / s.seb[e]) / s.seb[e];
    }
  });
  return wl;
}

double TapeWirelength::forward(tensor::Tape& tape, const float* x,
                               const float* y, float gamma, float* grad_x,
                               float* grad_y) {
  const float inv_gamma = 1.0f / gamma;
  const double wx = forward_dir(tape, x, view_.pin_ox.data(), inv_gamma, grad_x, sx_);
  const double wy = forward_dir(tape, y, view_.pin_oy.data(), inv_gamma, grad_y, sy_);
  return wx + wy;
}

double TapeWirelength::hpwl_op(const float* x, const float* y) {
  auto& disp = Dispatcher::global();
  const NetlistView& v = view_;
  double total = 0.0;
  // Kernel 1: per-net extents (x and y as one fused reduction, as DREAMPlace's
  // hpwl op does); kernel 2: weighted reduce.
  disp.run("hpwl.segment_minmax", [&] {
    std::fill(sx_.net_min.begin(), sx_.net_min.end(), std::numeric_limits<float>::max());
    std::fill(sx_.net_max.begin(), sx_.net_max.end(), std::numeric_limits<float>::lowest());
    std::fill(sy_.net_min.begin(), sy_.net_min.end(), std::numeric_limits<float>::max());
    std::fill(sy_.net_max.begin(), sy_.net_max.end(), std::numeric_limits<float>::lowest());
    for (std::size_t p = 0; p < v.num_pins; ++p) {
      const std::uint32_t e = v.pin_net[p];
      const float px = x[v.pin_cell[p]] + v.pin_ox[p];
      const float py = y[v.pin_cell[p]] + v.pin_oy[p];
      sx_.net_min[e] = std::min(sx_.net_min[e], px);
      sx_.net_max[e] = std::max(sx_.net_max[e], px);
      sy_.net_min[e] = std::min(sy_.net_min[e], py);
      sy_.net_max[e] = std::max(sy_.net_max[e], py);
    }
  });
  disp.run("hpwl.weighted_reduce", [&] {
    for (std::size_t e = 0; e < v.num_nets; ++e) {
      if (!v.net_mask[e]) continue;
      total += static_cast<double>(v.net_weight[e]) *
               ((sx_.net_max[e] - sx_.net_min[e]) + (sy_.net_max[e] - sy_.net_min[e]));
    }
  });
  return total;
}

}  // namespace xplace::ops
