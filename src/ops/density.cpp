#include "ops/density.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fft/fft.h"
#include "tensor/dispatch.h"
#include "util/geometry.h"

namespace xplace::ops {

using tensor::Dispatcher;

DensityGrid::DensityGrid(const db::Database& db, int m)
    : m_(m),
      region_lx_(db.region().lx),
      region_ly_(db.region().ly),
      bin_w_(db.region().width() / m),
      bin_h_(db.region().height() / m),
      inv_bin_w_(1.0 / bin_w_),
      inv_bin_h_(1.0 / bin_h_),
      inv_bin_area_(1.0 / (bin_w_ * bin_h_)),
      target_density_(db.target_density()),
      total_movable_area_(db.total_movable_area()) {
  if (!fft::is_pow2(static_cast<std::size_t>(m))) {
    throw std::invalid_argument("density grid dimension must be a power of two");
  }
  const std::size_t n = db.num_cells_total();
  half_w_.resize(n);
  half_h_.resize(n);
  dens_scale_.resize(n);
  const double min_w = bin_w_ * std::numbers::sqrt2;
  const double min_h = bin_h_ * std::numbers::sqrt2;
  for (std::size_t c = 0; c < n; ++c) {
    const bool fixed = db.kind(c) == db::CellKind::kFixed;
    double w = db.width(c), h = db.height(c);
    double scale = 1.0;
    if (!fixed) {
      // ePlace local smoothing: never narrower than √2·bin per dimension.
      const double we = std::max(w, min_w), he = std::max(h, min_h);
      scale = (w * h) / (we * he);
      w = we;
      h = he;
    } else {
      // Fixed cells contribute at most the target density so that bins fully
      // covered by a macro carry zero overflow and zero net force.
      scale = target_density_;
    }
    half_w_[c] = static_cast<float>(w * 0.5);
    half_h_[c] = static_cast<float>(h * 0.5);
    dens_scale_[c] = static_cast<float>(scale);
  }
}

void DensityGrid::accumulate_range(const char* opname, const float* x,
                                   const float* y, std::size_t begin,
                                   std::size_t end, double* map,
                                   bool clear) const {
  Dispatcher::global().run(opname, [&] {
    if (clear) std::fill(map, map + num_bins(), 0.0);
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t c = begin; c < end; ++c) {
        const double scale = dens_scale_[c] * inv_bin_area_;
        for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
          map[bin] += overlap * scale;
        });
      }
      return;
    }
    for (std::size_t c = begin; c < end; ++c) {
      scatter_one(k, c, x, y, dens_scale_[c] * inv_bin_area_, map);
    }
  });
}

double DensityGrid::overflow(const double* density_map) const {
  const double over_area = overflow_area(density_map);
  return total_movable_area_ > 0.0 ? over_area / total_movable_area_ : 0.0;
}

double DensityGrid::overflow_area(const double* density_map) const {
  double over_area = 0.0;
  Dispatcher::global().run("overflow_ratio", [&] {
    const double bin_area = bin_w_ * bin_h_;
    for (std::size_t b = 0; b < num_bins(); ++b) {
      over_area += std::max(density_map[b] - target_density_, 0.0) * bin_area;
    }
  });
  return over_area;
}

void DensityGrid::accumulate_cells(const char* opname, const float* x,
                                   const float* y,
                                   const std::vector<std::uint32_t>& cells,
                                   double* map, bool clear) const {
  Dispatcher::global().run(opname, [&] {
    if (clear) std::fill(map, map + num_bins(), 0.0);
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (const std::uint32_t c : cells) {
        const double scale = dens_scale_[c] * inv_bin_area_;
        for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
          map[bin] += overlap * scale;
        });
      }
      return;
    }
    for (const std::uint32_t c : cells) {
      scatter_one(k, c, x, y, dens_scale_[c] * inv_bin_area_, map);
    }
  });
}

void DensityGrid::gather_field_cells(const char* opname, const float* x,
                                     const float* y,
                                     const std::vector<std::uint32_t>& cells,
                                     const double* ex, const double* ey,
                                     float coeff, float* grad_x,
                                     float* grad_y) const {
  Dispatcher::global().run(opname, [&] {
    const simd::Kernels& k = simd::active();
    for (const std::uint32_t c : cells) {
      double fx = 0.0, fy = 0.0;
      if (k.isa == simd::Isa::kScalar) {
        for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
          fx += overlap * ex[bin];
          fy += overlap * ey[bin];
        });
      } else {
        gather_one(k, c, x, y, ex, ey, &fx, &fy);
      }
      const double q = dens_scale_[c] * inv_bin_area_;
      grad_x[c] += coeff * static_cast<float>(q * fx);
      grad_y[c] += coeff * static_cast<float>(q * fy);
    }
  });
}

void DensityGrid::gather_field(const char* opname, const float* x,
                               const float* y, std::size_t begin,
                               std::size_t end, const double* ex,
                               const double* ey, float coeff, float* grad_x,
                               float* grad_y) const {
  Dispatcher::global().run(opname, [&] {
    const simd::Kernels& k = simd::active();
    for (std::size_t c = begin; c < end; ++c) {
      double fx = 0.0, fy = 0.0;
      if (k.isa == simd::Isa::kScalar) {
        for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
          fx += overlap * ex[bin];
          fy += overlap * ey[bin];
        });
      } else {
        gather_one(k, c, x, y, ex, ey, &fx, &fy);
      }
      const double q = dens_scale_[c] * inv_bin_area_;
      grad_x[c] += coeff * static_cast<float>(q * fx);
      grad_y[c] += coeff * static_cast<float>(q * fy);
    }
  });
}

double DensityGrid::total_area(const double* map) const {
  double acc = 0.0;
  const double bin_area = bin_w_ * bin_h_;
  for (std::size_t b = 0; b < num_bins(); ++b) acc += map[b] * bin_area;
  return acc;
}

}  // namespace xplace::ops
