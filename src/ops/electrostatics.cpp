#include "ops/electrostatics.h"

#include <cmath>
#include <numbers>

#include "fft/dct.h"
#include "telemetry/trace.h"
#include "tensor/dispatch.h"
#include "util/thread_pool.h"

namespace xplace::ops {

using tensor::Dispatcher;

PoissonSolver::PoissonSolver(int m, double bin_w, double bin_h) : m_(m) {
  wu_.resize(m);
  wv_.resize(m);
  for (int u = 0; u < m; ++u) {
    wu_[u] = std::numbers::pi * u / (m * bin_w);
    wv_[u] = std::numbers::pi * u / (m * bin_h);
  }
  const std::size_t n = static_cast<std::size_t>(m) * m;
  coeff_.resize(n);
  ex_.resize(n);
  ey_.resize(n);
  psi_.resize(n);
}

void PoissonSolver::solve(const double* rho, bool want_potential) {
  XP_TRACE_SCOPE("gp.phase.fft");
  const std::size_t m = static_cast<std::size_t>(m_);
  const std::size_t n = m * m;
  auto& disp = Dispatcher::global();

  // Forward cosine transform of the (mean-removed) density. Removing the mean
  // enforces the ∬ρ = 0 solvability condition; it is exactly the a_00 term.
  disp.run("es.dct2", [&] {
    for (std::size_t i = 0; i < n; ++i) coeff_[i] = rho[i];
    fft::dct2(coeff_.data(), m, m, pool_);
    coeff_[0] = 0.0;  // zero-mean (kills the constant mode)
  });

  // Spectral scaling: ψ̂ = a/(w²); Ex̂ = ψ̂·wu ; Eŷ = ψ̂·wv.
  // Rows write disjoint index ranges, so the pooled pass is bitwise-equal to
  // the serial one for any worker count.
  disp.run("es.spectral_scale", [&] {
    auto scale_rows = [&](std::size_t u_begin, std::size_t u_end, std::size_t) {
      for (std::size_t u = u_begin; u < u_end; ++u) {
        for (std::size_t v = 0; v < m; ++v) {
          const std::size_t i = u * m + v;
          if (u == 0 && v == 0) {
            ex_[i] = ey_[i] = psi_[i] = 0.0;
            continue;
          }
          const double denom = wu_[u] * wu_[u] + wv_[v] * wv_[v];
          const double ps = coeff_[i] / denom;
          psi_[i] = ps;
          ex_[i] = ps * wu_[u];
          ey_[i] = ps * wv_[v];
        }
      }
    };
    if (pool_ != nullptr && pool_->size() > 1) {
      pool_->parallel_for(m, scale_rows, /*grain=*/8);
    } else {
      scale_rows(0, m, 0);
    }
  });

  // Field syntheses (sine along the differentiated axis).
  disp.run("es.idxst_idct", [&] { fft::idxst_idct(ex_.data(), m, m, pool_); });
  disp.run("es.idct_idxst", [&] { fft::idct_idxst(ey_.data(), m, m, pool_); });

  if (want_potential) {
    disp.run("es.idct2_psi", [&] { fft::idct2(psi_.data(), m, m, pool_); });
  }
}

double PoissonSolver::energy(const double* rho) const {
  double acc = 0.0;
  const std::size_t n = static_cast<std::size_t>(m_) * m_;
  for (std::size_t i = 0; i < n; ++i) acc += rho[i] * psi_[i];
  return 0.5 * acc;
}

}  // namespace xplace::ops
