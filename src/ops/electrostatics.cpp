#include "ops/electrostatics.h"

#include <cmath>
#include <numbers>

#include "fft/plan.h"
#include "telemetry/trace.h"
#include "tensor/dispatch.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace xplace::ops {

using tensor::Dispatcher;

PoissonSolver::PoissonSolver(int m, double bin_w, double bin_h) : m_(m) {
  wu_.resize(m);
  wv_.resize(m);
  for (int u = 0; u < m; ++u) {
    wu_[u] = std::numbers::pi * u / (m * bin_w);
    wv_[u] = std::numbers::pi * u / (m * bin_h);
  }
  const std::size_t n = static_cast<std::size_t>(m) * m;
  coeff_.resize(n);
  ex_.resize(n);
  ey_.resize(n);
  psi_.resize(n);
}

void PoissonSolver::solve(const double* rho, bool want_potential) {
  XP_TRACE_SCOPE("gp.phase.fft");
  const std::size_t m = static_cast<std::size_t>(m_);
  auto& disp = Dispatcher::global();
  ThreadPool* pool = (pool_ != nullptr && pool_->size() > 1) ? pool_ : nullptr;
  using fft::Kind1D;
  using fft::PassOp;

  // Forward cosine transform of the density, through the fused plan engine:
  // the row pass reads ρ straight into coeff_ (the old copy loop is the
  // gather of the fused head), and the spectral scaling
  //   ψ̂ = a/(w²); Ex̂ = ψ̂·wu ; Eŷ = ψ̂·wv
  // rides the column pass as a per-column-pair hook while the pair is cache-
  // hot. The i = 0 special case zeroes the constant mode, which is exactly
  // the ∬ρ = 0 mean removal. Pairs write disjoint columns, so the pooled
  // pass stays bitwise-equal to the serial one for any worker count.
  disp.run("es.dct2", [&] {
    const PassOp row{rho, coeff_.data(), Kind1D::kDct};
    fft::run_rows(&row, 1, m, m, pool, scratch_);
    const PassOp col{coeff_.data(), coeff_.data(), Kind1D::kDct};
    const fft::ColHook scale = [&](std::size_t c0, std::size_t c1) {
      for (std::size_t v = c0; v <= c1; ++v) {
        for (std::size_t u = 0; u < m; ++u) {
          const std::size_t i = u * m + v;
          if (i == 0) {
            ex_[0] = ey_[0] = psi_[0] = 0.0;
            continue;
          }
          const double denom = wu_[u] * wu_[u] + wv_[v] * wv_[v];
          const double ps = coeff_[i] / denom;
          psi_[i] = ps;
          ex_[i] = ps * wu_[u];
          ey_[i] = ps * wv_[v];
        }
      }
    };
    fft::run_cols(&col, 1, m, m, pool, scratch_, &scale);
  });

  // Field syntheses (sine along the differentiated axis), batched: every row
  // of every needed grid fans out in one dispatch, then every column pair.
  //   E_x = idxst_idct(Ex̂)  →  idct rows, idxst columns
  //   E_y = idct_idxst(Eŷ)  →  idxst rows, idct columns
  //   ψ   = idct2(ψ̂)        →  idct rows, idct columns (baseline path only)
  const std::size_t grids = want_potential ? 3 : 2;
  disp.run("es.field_rows", [&] {
    const PassOp ops[3] = {
        {ex_.data(), ex_.data(), Kind1D::kIdct},
        {ey_.data(), ey_.data(), Kind1D::kIdxst},
        {psi_.data(), psi_.data(), Kind1D::kIdct},
    };
    fft::run_rows(ops, grids, m, m, pool, scratch_);
  });
  disp.run("es.field_cols", [&] {
    const PassOp ops[3] = {
        {ex_.data(), ex_.data(), Kind1D::kIdxst},
        {ey_.data(), ey_.data(), Kind1D::kIdct},
        {psi_.data(), psi_.data(), Kind1D::kIdct},
    };
    fft::run_cols(ops, grids, m, m, pool, scratch_);
  });
}

double PoissonSolver::energy(const double* rho) const {
  const std::size_t n = static_cast<std::size_t>(m_) * m_;
  return 0.5 * simd::active().ddot(rho, psi_.data(), n);
}

}  // namespace xplace::ops
