// Flat single-precision view of a database's connectivity, mirroring the
// device-side arrays a GPU placer uploads once before iterating.
#pragma once

#include <cstdint>
#include <vector>

#include "db/database.h"

namespace xplace::ops {

struct NetlistView {
  std::size_t num_cells = 0;  ///< physical cells (movable + fixed, no fillers)
  std::size_t num_movable = 0;
  std::size_t num_nets = 0;
  std::size_t num_pins = 0;

  std::vector<std::uint32_t> net_start;  ///< CSR offsets, size num_nets+1
  std::vector<std::uint32_t> pin_cell;   ///< size num_pins
  std::vector<std::uint32_t> pin_net;    ///< size num_pins
  std::vector<float> pin_ox, pin_oy;     ///< offsets from cell center
  std::vector<float> net_weight;         ///< per-net weight
  /// 1 for nets included in wirelength (degree >= 2), 0 for degenerate nets.
  std::vector<std::uint8_t> net_mask;

  std::size_t degree(std::size_t e) const { return net_start[e + 1] - net_start[e]; }
};

NetlistView build_netlist_view(const db::Database& db);

}  // namespace xplace::ops
