#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/dispatch.h"

namespace xplace::tensor {

namespace {
Dispatcher& disp() { return Dispatcher::global(); }
}  // namespace

#define XP_BINARY_OP(fn_name, expr)                                 \
  Tensor fn_name(const Tensor& a, const Tensor& b) {                \
    assert(a.numel() == b.numel());                                 \
    Tensor out({a.numel()});                                        \
    disp().run(#fn_name, [&] {                                      \
      const float* pa = a.data();                                   \
      const float* pb = b.data();                                   \
      float* po = out.data();                                       \
      for (std::size_t i = 0; i < a.numel(); ++i) po[i] = (expr);   \
    });                                                             \
    return out;                                                     \
  }

XP_BINARY_OP(add, pa[i] + pb[i])
XP_BINARY_OP(sub, pa[i] - pb[i])
XP_BINARY_OP(mul, pa[i] * pb[i])
XP_BINARY_OP(maximum, std::max(pa[i], pb[i]))
#undef XP_BINARY_OP

#define XP_UNARY_OP(fn_name, expr)                                \
  Tensor fn_name(const Tensor& a) {                               \
    Tensor out({a.numel()});                                      \
    disp().run(#fn_name, [&] {                                    \
      const float* pa = a.data();                                 \
      float* po = out.data();                                     \
      for (std::size_t i = 0; i < a.numel(); ++i) po[i] = (expr); \
    });                                                           \
    return out;                                                   \
  }

XP_UNARY_OP(exp, std::exp(pa[i]))
XP_UNARY_OP(reciprocal, 1.0f / pa[i])
XP_UNARY_OP(neg, -pa[i])
XP_UNARY_OP(abs, std::fabs(pa[i]))
#undef XP_UNARY_OP

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out({a.numel()});
  disp().run("mul_scalar", [&] {
    const float* pa = a.data();
    float* po = out.data();
    for (std::size_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * s;
  });
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out({a.numel()});
  disp().run("add_scalar", [&] {
    const float* pa = a.data();
    float* po = out.data();
    for (std::size_t i = 0; i < a.numel(); ++i) po[i] = pa[i] + s;
  });
  return out;
}

Tensor clamp_min(const Tensor& a, float lo) {
  Tensor out({a.numel()});
  disp().run("clamp_min", [&] {
    const float* pa = a.data();
    float* po = out.data();
    for (std::size_t i = 0; i < a.numel(); ++i) po[i] = std::max(pa[i], lo);
  });
  return out;
}

void zero_(Tensor& a) {
  disp().run("zero_", [&] {
    float* p = a.data();
    for (std::size_t i = 0; i < a.numel(); ++i) p[i] = 0.0f;
  });
}

void fill_(Tensor& a, float value) {
  disp().run("fill_", [&] {
    float* p = a.data();
    for (std::size_t i = 0; i < a.numel(); ++i) p[i] = value;
  });
}

void copy_(Tensor& dst, const Tensor& src) {
  assert(dst.numel() == src.numel());
  disp().run("copy_", [&] {
    float* pd = dst.data();
    const float* ps = src.data();
    for (std::size_t i = 0; i < dst.numel(); ++i) pd[i] = ps[i];
  });
}

void add_(Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  disp().run("add_", [&] {
    float* pa = a.data();
    const float* pb = b.data();
    for (std::size_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
  });
}

void add_scaled_(Tensor& a, const Tensor& b, float s) {
  assert(a.numel() == b.numel());
  disp().run("add_scaled_", [&] {
    float* pa = a.data();
    const float* pb = b.data();
    for (std::size_t i = 0; i < a.numel(); ++i) pa[i] += s * pb[i];
  });
}

void mul_scalar_(Tensor& a, float s) {
  disp().run("mul_scalar_", [&] {
    float* pa = a.data();
    for (std::size_t i = 0; i < a.numel(); ++i) pa[i] *= s;
  });
}

void axpby_(Tensor& a, float alpha, const Tensor& b, float beta) {
  assert(a.numel() == b.numel());
  disp().run("axpby_", [&] {
    float* pa = a.data();
    const float* pb = b.data();
    for (std::size_t i = 0; i < a.numel(); ++i)
      pa[i] = alpha * pa[i] + beta * pb[i];
  });
}

float sum(const Tensor& a) {
  double acc = 0.0;
  disp().run("sum", [&] {
    const float* p = a.data();
    for (std::size_t i = 0; i < a.numel(); ++i) acc += p[i];
  });
  return static_cast<float>(acc);
}

float abs_sum(const Tensor& a) {
  double acc = 0.0;
  disp().run("abs_sum", [&] {
    const float* p = a.data();
    for (std::size_t i = 0; i < a.numel(); ++i) acc += std::fabs(p[i]);
  });
  return static_cast<float>(acc);
}

float max_value(const Tensor& a) {
  float m = -std::numeric_limits<float>::infinity();
  disp().run("max_value", [&] {
    const float* p = a.data();
    for (std::size_t i = 0; i < a.numel(); ++i) m = std::max(m, p[i]);
  });
  return m;
}

float min_value(const Tensor& a) {
  float m = std::numeric_limits<float>::infinity();
  disp().run("min_value", [&] {
    const float* p = a.data();
    for (std::size_t i = 0; i < a.numel(); ++i) m = std::min(m, p[i]);
  });
  return m;
}

FiniteStats finite_stats(const float* a, const float* b, std::size_t n) {
  FiniteStats st;
  disp().run("finite_stats", [&] {
    std::size_t bad = 0;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (a != nullptr) {
        const float v = a[i];
        if (std::isfinite(v)) acc += std::fabs(v); else ++bad;
      }
      if (b != nullptr) {
        const float v = b[i];
        if (std::isfinite(v)) acc += std::fabs(v); else ++bad;
      }
    }
    st.nonfinite = bad;
    st.abs_sum = acc;
  });
  return st;
}

bool all_finite(const Tensor& a) {
  return finite_stats(a.data(), nullptr, a.numel()).nonfinite == 0;
}

float dot(const Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  double acc = 0.0;
  disp().run("dot", [&] {
    const float* pa = a.data();
    const float* pb = b.data();
    for (std::size_t i = 0; i < a.numel(); ++i)
      acc += static_cast<double>(pa[i]) * pb[i];
  });
  return static_cast<float>(acc);
}

}  // namespace xplace::tensor
