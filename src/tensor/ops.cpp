#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/dispatch.h"
#include "util/simd.h"

// Every op keeps its dispatcher name and launch count; only the loop body
// moved into the SIMD kernel table (util/simd.h). The scalar backend's
// kernels are the historical loops verbatim (now with hoisted bounds and
// __restrict pointers), so XPLACE_SIMD=scalar reproduces pre-SIMD results
// bitwise; the AVX2 elementwise kernels are bitwise-equal too (no FMA
// contraction), while reductions keep double accumulators with a fixed
// lane-fold order.

namespace xplace::tensor {

namespace {
Dispatcher& disp() { return Dispatcher::global(); }
}  // namespace

#define XP_BINARY_OP(fn_name, kernel)                                \
  Tensor fn_name(const Tensor& a, const Tensor& b) {                 \
    assert(a.numel() == b.numel());                                  \
    Tensor out({a.numel()});                                         \
    disp().run(#fn_name, [&] {                                       \
      simd::active().kernel(a.data(), b.data(), out.data(), a.numel()); \
    });                                                              \
    return out;                                                      \
  }

XP_BINARY_OP(add, add)
XP_BINARY_OP(sub, sub)
XP_BINARY_OP(mul, mul)
XP_BINARY_OP(maximum, maximum)
#undef XP_BINARY_OP

#define XP_UNARY_OP(fn_name, kernel)                           \
  Tensor fn_name(const Tensor& a) {                            \
    Tensor out({a.numel()});                                   \
    disp().run(#fn_name, [&] {                                 \
      simd::active().kernel(a.data(), out.data(), a.numel());  \
    });                                                        \
    return out;                                                \
  }

XP_UNARY_OP(exp, vexp)
XP_UNARY_OP(reciprocal, reciprocal)
XP_UNARY_OP(neg, neg)
XP_UNARY_OP(abs, vabs)
#undef XP_UNARY_OP

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out({a.numel()});
  disp().run("mul_scalar", [&] {
    simd::active().mul_scalar(a.data(), s, out.data(), a.numel());
  });
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out({a.numel()});
  disp().run("add_scalar", [&] {
    simd::active().add_scalar(a.data(), s, out.data(), a.numel());
  });
  return out;
}

Tensor clamp_min(const Tensor& a, float lo) {
  Tensor out({a.numel()});
  disp().run("clamp_min", [&] {
    simd::active().clamp_min(a.data(), lo, out.data(), a.numel());
  });
  return out;
}

void zero_(Tensor& a) {
  disp().run("zero_",
             [&] { simd::active().fill(a.data(), 0.0f, a.numel()); });
}

void fill_(Tensor& a, float value) {
  disp().run("fill_",
             [&] { simd::active().fill(a.data(), value, a.numel()); });
}

void copy_(Tensor& dst, const Tensor& src) {
  assert(dst.numel() == src.numel());
  disp().run("copy_", [&] {
    simd::active().copy(dst.data(), src.data(), dst.numel());
  });
}

void add_(Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  disp().run("add_",
             [&] { simd::active().add_(a.data(), b.data(), a.numel()); });
}

void add_scaled_(Tensor& a, const Tensor& b, float s) {
  assert(a.numel() == b.numel());
  disp().run("add_scaled_", [&] {
    simd::active().axpy_(a.data(), b.data(), s, a.numel());
  });
}

void mul_scalar_(Tensor& a, float s) {
  disp().run("mul_scalar_",
             [&] { simd::active().scal_(a.data(), s, a.numel()); });
}

void axpby_(Tensor& a, float alpha, const Tensor& b, float beta) {
  assert(a.numel() == b.numel());
  disp().run("axpby_", [&] {
    simd::active().axpby_(a.data(), alpha, b.data(), beta, a.numel());
  });
}

float sum(const Tensor& a) {
  double acc = 0.0;
  disp().run("sum", [&] { acc = simd::active().sum(a.data(), a.numel()); });
  return static_cast<float>(acc);
}

float abs_sum(const Tensor& a) {
  double acc = 0.0;
  disp().run("abs_sum",
             [&] { acc = simd::active().abs_sum(a.data(), a.numel()); });
  return static_cast<float>(acc);
}

float max_value(const Tensor& a) {
  float m = -std::numeric_limits<float>::infinity();
  disp().run("max_value",
             [&] { m = simd::active().max_value(a.data(), a.numel()); });
  return m;
}

float min_value(const Tensor& a) {
  float m = std::numeric_limits<float>::infinity();
  disp().run("min_value",
             [&] { m = simd::active().min_value(a.data(), a.numel()); });
  return m;
}

FiniteStats finite_stats(const float* a, const float* b, std::size_t n) {
  FiniteStats st;
  disp().run("finite_stats", [&] {
    const simd::Kernels& k = simd::active();
    if (a != nullptr && b != nullptr && k.isa == simd::Isa::kScalar) {
      // Historical two-buffer interleave (a[i], b[i], a[i+1], …) preserved
      // verbatim so the scalar backend accumulates in the exact same order.
      std::size_t bad = 0;
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        {
          const float v = a[i];
          if (std::isfinite(v)) acc += std::fabs(v); else ++bad;
        }
        {
          const float v = b[i];
          if (std::isfinite(v)) acc += std::fabs(v); else ++bad;
        }
      }
      st.nonfinite = bad;
      st.abs_sum = acc;
      return;
    }
    std::size_t bad_total = 0;
    double acc_total = 0.0;
    if (a != nullptr) {
      std::size_t bad = 0;
      double acc = 0.0;
      k.finite_stats(a, n, &bad, &acc);
      bad_total += bad;
      acc_total += acc;
    }
    if (b != nullptr) {
      std::size_t bad = 0;
      double acc = 0.0;
      k.finite_stats(b, n, &bad, &acc);
      bad_total += bad;
      acc_total += acc;
    }
    st.nonfinite = bad_total;
    st.abs_sum = acc_total;
  });
  return st;
}

bool all_finite(const Tensor& a) {
  return finite_stats(a.data(), nullptr, a.numel()).nonfinite == 0;
}

float dot(const Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  double acc = 0.0;
  disp().run("dot", [&] {
    acc = simd::active().dot(a.data(), b.data(), a.numel());
  });
  return static_cast<float>(acc);
}

}  // namespace xplace::tensor
