// Elementwise / reduction kernels over Tensor, all routed through the
// Dispatcher so that every call counts as one "kernel launch".
//
// Two flavors exist deliberately:
//   * out-of-place ops (allocate a result) — what a PyTorch expression graph
//     produces; used by the DREAMPlace-mode baseline,
//   * in-place ops (suffix `_`) — Xplace's operator-reduction style
//     (Section 3.1.3: "PyTorch in-place operators ... are used as much as
//     possible").
#pragma once

#include "tensor/tensor.h"

namespace xplace::tensor {

// ---- out-of-place -------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor mul_scalar(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
Tensor exp(const Tensor& a);
Tensor reciprocal(const Tensor& a);
Tensor neg(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor clamp_min(const Tensor& a, float lo);

// ---- in-place -----------------------------------------------------------
void zero_(Tensor& a);
void fill_(Tensor& a, float value);
void copy_(Tensor& dst, const Tensor& src);
void add_(Tensor& a, const Tensor& b);             // a += b
void add_scaled_(Tensor& a, const Tensor& b, float s);  // a += s*b
void mul_scalar_(Tensor& a, float s);
void axpby_(Tensor& a, float alpha, const Tensor& b, float beta);  // a = alpha*a + beta*b

// ---- reductions (each is one launch returning a host scalar, i.e. a
// synchronization point in the CUDA analogy) ------------------------------
float sum(const Tensor& a);
float abs_sum(const Tensor& a);
float max_value(const Tensor& a);
float min_value(const Tensor& a);
float dot(const Tensor& a, const Tensor& b);

// ---- numeric sentinels (run-guardian support) ---------------------------
/// Result of one fused sentinel scan: how many entries are NaN/Inf, and the
/// Σ|aᵢ| magnitude of the finite ones (used for spike detection).
struct FiniteStats {
  std::size_t nonfinite = 0;
  double abs_sum = 0.0;
};

/// Fused finite-check + magnitude reduce over two parallel buffers (e.g. the
/// x/y gradient pair) in ONE launch — cheap enough to run every GP iteration.
/// Either pointer may be null (scans only the other).
FiniteStats finite_stats(const float* a, const float* b, std::size_t n);

/// Tensor-level finite check (one launch).
bool all_finite(const Tensor& a);

}  // namespace xplace::tensor
