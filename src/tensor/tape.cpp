#include "tensor/tape.h"

#include "tensor/dispatch.h"

namespace xplace::tensor {

void Tape::record(std::string name, std::function<void()> backward_fn) {
  nodes_.push_back(Node{std::move(name), std::move(backward_fn)});
}

void Tape::backward() {
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    const std::string launch_name = it->name + ".backward";
    Dispatcher::global().run(launch_name.c_str(), it->fn);
  }
  clear();
}

}  // namespace xplace::tensor
