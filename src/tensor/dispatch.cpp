#include "tensor/dispatch.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "telemetry/metrics.h"

namespace xplace::tensor {

Dispatcher& Dispatcher::global() {
  static Dispatcher d;
  return d;
}

const char* Dispatcher::intern(const char* name) {
  std::lock_guard<std::mutex> lock(intern_mutex_);
  return interned_.emplace(name).first->c_str();
}

const char* Dispatcher::begin_launch(const char* name) {
  total_launches_.fetch_add(1, std::memory_order_relaxed);
  active_launches_.fetch_add(1, std::memory_order_relaxed);
  // FNV-1a over the name's *content*, then linear probe. Content hashing (not
  // pointer hashing) means equal-text names land on one slot no matter where
  // they are stored — string literals from any TU, or per-call temporaries
  // like Tape::backward's "<op>.backward". The path stays lock-free per
  // launch: the intern lock below is taken once per distinct name.
  std::uint64_t h = 14695981039346656037ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 1099511628211ull;
  }
  const char* stable = nullptr;
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    Slot& slot = slots_[(h + probe) & (kSlots - 1)];
    const char* key = slot.name.load(std::memory_order_acquire);
    if (key == nullptr) {
      // First sighting on this probe chain: publish an interned copy so the
      // slot key outlives any caller-owned buffer.
      const char* candidate = intern(name);
      const char* expected = nullptr;
      if (slot.name.compare_exchange_strong(expected, candidate,
                                            std::memory_order_acq_rel)) {
        key = candidate;
      } else {
        key = expected;  // another thread claimed this slot first
      }
    }
    if (key == name || std::strcmp(key, name) == 0) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      stable = key;
      break;
    }
  }
  if (stable == nullptr) {
    // Table full — count the launch, and still hand back a process-lifetime
    // pointer for the trace span.
    overflow_launches_.fetch_add(1, std::memory_order_relaxed);
    stable = intern(name);
  }
  if (launch_latency_ > 0.0) {
    // Busy-wait: models the CPU being occupied enqueueing the kernel.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(launch_latency_);
    while (std::chrono::steady_clock::now() < until) {
      // spin
    }
  }
  return stable;
}

std::map<std::string, std::uint64_t> Dispatcher::launch_counts() const {
  std::map<std::string, std::uint64_t> out;
  for (const Slot& slot : slots_) {
    const char* key = slot.name.load(std::memory_order_acquire);
    if (key == nullptr) continue;
    const std::uint64_t n = slot.count.load(std::memory_order_relaxed);
    if (n > 0) out[key] += n;
  }
  const std::uint64_t dropped =
      overflow_launches_.load(std::memory_order_relaxed);
  if (dropped > 0) out["(slot-table overflow)"] += dropped;
  return out;
}

void Dispatcher::reset_counters() {
  // Contract: the single flow thread calls this between phases. A launch
  // racing the reset would leave total vs per-slot counts skewed.
  assert(active_launches_.load(std::memory_order_acquire) == 0 &&
         "Dispatcher::reset_counters while kernels are launching");
  total_launches_.store(0, std::memory_order_relaxed);
  overflow_launches_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) slot.count.store(0, std::memory_order_relaxed);
}

std::string Dispatcher::report() const {
  const std::map<std::string, std::uint64_t> snap = launch_counts();
  std::vector<std::pair<std::string, std::uint64_t>> rows(snap.begin(),
                                                          snap.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::string out = "total launches: " + std::to_string(total_launches()) + "\n";
  for (const auto& [name, count] : rows) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  return out;
}

void Dispatcher::publish(telemetry::Registry& registry) const {
  telemetry::Counter& total = registry.counter("dispatch.launches");
  total.reset();
  total.inc(total_launches());
  for (const auto& [name, count] : launch_counts()) {
    telemetry::Counter& c = registry.counter("dispatch.launch." + name);
    c.reset();
    c.inc(count);
  }
}

}  // namespace xplace::tensor
