#include "tensor/dispatch.h"

#include <algorithm>
#include <vector>

namespace xplace::tensor {

Dispatcher& Dispatcher::global() {
  static Dispatcher d;
  return d;
}

void Dispatcher::begin_launch(const char* name) {
  ++total_launches_;
  ++launch_counts_[name];
  if (launch_latency_ > 0.0) {
    // Busy-wait: models the CPU being occupied enqueueing the kernel.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(launch_latency_);
    while (std::chrono::steady_clock::now() < until) {
      // spin
    }
  }
}

void Dispatcher::reset_counters() {
  total_launches_ = 0;
  launch_counts_.clear();
}

std::string Dispatcher::report() const {
  std::vector<std::pair<std::string, std::uint64_t>> rows(
      launch_counts_.begin(), launch_counts_.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::string out = "total launches: " + std::to_string(total_launches_) + "\n";
  for (const auto& [name, count] : rows) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace xplace::tensor
