#include "tensor/dispatch.h"

#include <algorithm>
#include <vector>

#include "telemetry/metrics.h"

namespace xplace::tensor {

Dispatcher& Dispatcher::global() {
  static Dispatcher d;
  return d;
}

void Dispatcher::begin_launch(const char* name) {
  total_launches_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++launch_counts_[name];
  }
  if (launch_latency_ > 0.0) {
    // Busy-wait: models the CPU being occupied enqueueing the kernel.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(launch_latency_);
    while (std::chrono::steady_clock::now() < until) {
      // spin
    }
  }
}

std::map<std::string, std::uint64_t> Dispatcher::launch_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return launch_counts_;
}

void Dispatcher::reset_counters() {
  std::lock_guard<std::mutex> lock(mutex_);
  total_launches_.store(0, std::memory_order_relaxed);
  launch_counts_.clear();
}

std::string Dispatcher::report() const {
  const std::map<std::string, std::uint64_t> snap = launch_counts();
  std::vector<std::pair<std::string, std::uint64_t>> rows(snap.begin(),
                                                          snap.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::string out = "total launches: " + std::to_string(total_launches()) + "\n";
  for (const auto& [name, count] : rows) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  return out;
}

void Dispatcher::publish(telemetry::Registry& registry) const {
  telemetry::Counter& total = registry.counter("dispatch.launches");
  total.reset();
  total.inc(total_launches());
  for (const auto& [name, count] : launch_counts()) {
    telemetry::Counter& c = registry.counter("dispatch.launch." + name);
    c.reset();
    c.inc(count);
  }
}

}  // namespace xplace::tensor
