#include "tensor/dispatch.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "telemetry/metrics.h"

namespace xplace::tensor {

Dispatcher& Dispatcher::global() {
  static Dispatcher d;
  return d;
}

void Dispatcher::begin_launch(const char* name) {
  total_launches_.fetch_add(1, std::memory_order_relaxed);
  // Fibonacci-hash the literal's address into the slot table; linear probe.
  // Names are string literals, so pointer equality identifies the op and the
  // whole path is wait-free after the slot's one-time CAS claim.
  const std::uint64_t h =
      (reinterpret_cast<std::uintptr_t>(name) * 0x9e3779b97f4a7c15ull) >> 32;
  bool counted = false;
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    Slot& slot = slots_[(h + probe) & (kSlots - 1)];
    const char* key = slot.name.load(std::memory_order_acquire);
    if (key == nullptr) {
      const char* expected = nullptr;
      if (slot.name.compare_exchange_strong(expected, name,
                                            std::memory_order_acq_rel)) {
        key = name;
      } else {
        key = expected;  // another thread claimed it first
      }
    }
    if (key == name) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      counted = true;
      break;
    }
  }
  if (!counted) overflow_launches_.fetch_add(1, std::memory_order_relaxed);
  if (launch_latency_ > 0.0) {
    // Busy-wait: models the CPU being occupied enqueueing the kernel.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(launch_latency_);
    while (std::chrono::steady_clock::now() < until) {
      // spin
    }
  }
}

std::map<std::string, std::uint64_t> Dispatcher::launch_counts() const {
  std::map<std::string, std::uint64_t> out;
  for (const Slot& slot : slots_) {
    const char* key = slot.name.load(std::memory_order_acquire);
    if (key == nullptr) continue;
    const std::uint64_t n = slot.count.load(std::memory_order_relaxed);
    if (n > 0) out[key] += n;  // merges equal-text literals from distinct TUs
  }
  const std::uint64_t dropped =
      overflow_launches_.load(std::memory_order_relaxed);
  if (dropped > 0) out["(slot-table overflow)"] += dropped;
  return out;
}

void Dispatcher::reset_counters() {
  total_launches_.store(0, std::memory_order_relaxed);
  overflow_launches_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) slot.count.store(0, std::memory_order_relaxed);
}

std::string Dispatcher::report() const {
  const std::map<std::string, std::uint64_t> snap = launch_counts();
  std::vector<std::pair<std::string, std::uint64_t>> rows(snap.begin(),
                                                          snap.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::string out = "total launches: " + std::to_string(total_launches()) + "\n";
  for (const auto& [name, count] : rows) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  return out;
}

void Dispatcher::publish(telemetry::Registry& registry) const {
  telemetry::Counter& total = registry.counter("dispatch.launches");
  total.reset();
  total.inc(total_launches());
  for (const auto& [name, count] : launch_counts()) {
    telemetry::Counter& c = registry.counter("dispatch.launch." + name);
    c.reset();
    c.inc(count);
  }
}

}  // namespace xplace::tensor
