#include "tensor/tensor.h"

#include <numeric>

namespace xplace::tensor {

namespace {
std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : data_(std::make_shared<std::vector<float>>(shape_numel(shape), 0.0f)),
      shape_(std::move(shape)) {}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  for (auto& v : *t.data_) v = value;
  return t;
}

Tensor Tensor::from(const std::vector<float>& values) {
  Tensor t({values.size()});
  *t.data_ = values;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t;
  if (data_) {
    t.data_ = std::make_shared<std::vector<float>>(*data_);
    t.shape_ = shape_;
  }
  return t;
}

std::string Tensor::shape_str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape_[i]);
  }
  s += "]";
  return s;
}

}  // namespace xplace::tensor
