// Minimal dense float32 tensor.
//
// This is the repository's stand-in for a PyTorch CUDA tensor. Placement
// state (positions, gradients, per-net scratch, density grids) lives in these
// buffers. Copy semantics are shallow (shared buffer) like torch.Tensor;
// `clone()` deep-copies. Shapes are kept only for bookkeeping — all kernels
// operate on the flat buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace xplace::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Uninitialized (zero-filled) tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor full(std::vector<std::size_t> shape, float value);
  static Tensor from(const std::vector<float>& values);

  bool defined() const { return data_ != nullptr; }
  std::size_t numel() const { return data_ ? data_->size() : 0; }
  const std::vector<std::size_t>& shape() const { return shape_; }

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  float& operator[](std::size_t i) { return (*data_)[i]; }
  float operator[](std::size_t i) const { return (*data_)[i]; }

  /// Deep copy.
  Tensor clone() const;

  /// True iff both views share the same buffer.
  bool same_storage(const Tensor& other) const { return data_ == other.data_; }

  std::string shape_str() const;

 private:
  std::shared_ptr<std::vector<float>> data_;
  std::vector<std::size_t> shape_;
};

}  // namespace xplace::tensor
