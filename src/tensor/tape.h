// Tape-based reverse-mode autodiff — the repository's model of PyTorch's
// autograd engine.
//
// The DREAMPlace-mode baseline records one tape node per forward operator and
// replays them in reverse at backward() time; every backward body is itself
// dispatched as one or more kernel launches, reproducing the paper's
// observation that "invoking the heavy autograd engine will almost double the
// number of operators" (Section 3.1.3). Xplace mode never touches the tape —
// it assigns numerically-derived gradients directly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace xplace::tensor {

class Tape {
 public:
  /// Record a backward closure for a forward op named `name`. Closures run in
  /// reverse record order on backward(). The `cost` is an op-count weight —
  /// how many elementary kernel launches the backward of this node issues
  /// beyond the dispatched closure itself (informational, used by tests).
  void record(std::string name, std::function<void()> backward_fn);

  /// Replay the tape in reverse; each node's closure is executed under the
  /// Dispatcher with name "<name>.backward". Clears the tape afterwards.
  void backward();

  std::size_t size() const { return nodes_.size(); }
  void clear() { nodes_.clear(); }

 private:
  struct Node {
    std::string name;
    std::function<void()> fn;
  };
  std::vector<Node> nodes_;
};

}  // namespace xplace::tensor
