// Operator dispatch layer — the CUDA-launch model of this CPU reproduction.
//
// In the paper, every PyTorch operator launch pays a fixed CPU-side kernel
// launch cost that can dominate when the per-operator workload is small
// (Section 3.1.3). Xplace's "operator reduction" wins precisely by issuing
// fewer launches. On this CPU substrate every kernel invocation goes through
// `Dispatcher::run`, which:
//
//   * counts launches (per-name and total) so benches report op-graph size,
//   * optionally busy-waits a configurable `launch_latency` before the kernel
//     body, simulating the CUDA enqueue overhead (~8 µs class) that the paper
//     measured. The default latency is 0 (pure CPU timing); Table 3 benches
//     run both modes.
//
// The dispatcher is intentionally a process-global: it models the single CUDA
// stream the placer uses.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace xplace::tensor {

class Dispatcher {
 public:
  static Dispatcher& global();

  /// Simulated per-launch overhead in seconds (0 disables the model).
  void set_launch_latency(double seconds) { launch_latency_ = seconds; }
  double launch_latency() const { return launch_latency_; }

  /// Execute a kernel body under launch accounting.
  template <typename Fn>
  void run(const char* name, Fn&& kernel) {
    begin_launch(name);
    kernel();
  }

  std::uint64_t total_launches() const { return total_launches_; }
  const std::map<std::string, std::uint64_t>& launch_counts() const {
    return launch_counts_;
  }

  void reset_counters();

  /// Human-readable per-op launch histogram.
  std::string report() const;

 private:
  void begin_launch(const char* name);

  double launch_latency_ = 0.0;
  std::uint64_t total_launches_ = 0;
  std::map<std::string, std::uint64_t> launch_counts_;
};

/// RAII guard that sets the global launch latency and restores it on exit.
class LaunchLatencyGuard {
 public:
  explicit LaunchLatencyGuard(double seconds)
      : saved_(Dispatcher::global().launch_latency()) {
    Dispatcher::global().set_launch_latency(seconds);
  }
  ~LaunchLatencyGuard() { Dispatcher::global().set_launch_latency(saved_); }
  LaunchLatencyGuard(const LaunchLatencyGuard&) = delete;
  LaunchLatencyGuard& operator=(const LaunchLatencyGuard&) = delete;

 private:
  double saved_;
};

}  // namespace xplace::tensor
