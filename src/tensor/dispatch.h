// Operator dispatch layer — the CUDA-launch model of this CPU reproduction.
//
// In the paper, every PyTorch operator launch pays a fixed CPU-side kernel
// launch cost that can dominate when the per-operator workload is small
// (Section 3.1.3). Xplace's "operator reduction" wins precisely by issuing
// fewer launches. On this CPU substrate every kernel invocation goes through
// `Dispatcher::run`, which:
//
//   * counts launches (per-name and total) so benches report op-graph size,
//   * emits a telemetry trace span per launch when the global tracer is
//     enabled (telemetry/trace.h), so a placement run produces a per-kernel
//     flame view in Perfetto,
//   * optionally busy-waits a configurable `launch_latency` before the kernel
//     body, simulating the CUDA enqueue overhead (~8 µs class) that the paper
//     measured. The default latency is 0 (pure CPU timing); Table 3 benches
//     run both modes.
//
// The dispatcher is intentionally a process-global: it models the single CUDA
// stream the placer uses. Counters are thread-safe AND lock-free on the hot
// path: per-op launch counts live in a fixed-slot open-addressed table keyed
// by a content hash of the op name. A name is interned (copied into dispatcher-
// owned storage, under a lock taken once per *distinct* name) when its slot is
// first claimed by CAS, so callers may pass transient buffers — e.g.
// Tape::backward's per-node "<op>.backward" temporaries — and kernels launched
// from pool workers never serialize on a mutex per launch.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "telemetry/trace.h"

namespace xplace::telemetry {
class Registry;
}

namespace xplace::tensor {

class Dispatcher {
 public:
  static Dispatcher& global();

  /// Simulated per-launch overhead in seconds (0 disables the model).
  void set_launch_latency(double seconds) { launch_latency_ = seconds; }
  double launch_latency() const { return launch_latency_; }

  /// Execute a kernel body under launch accounting. `name` may be any
  /// NUL-terminated string — it is interned on first sighting, and the
  /// interned copy (stable for the process lifetime) is what the tracer
  /// retains, so transient buffers are safe.
  template <typename Fn>
  void run(const char* name, Fn&& kernel) {
    const char* stable = begin_launch(name);
    const EndLaunchGuard guard{this};
    telemetry::TraceScope span(stable);
    kernel();
  }

  std::uint64_t total_launches() const {
    return total_launches_.load(std::memory_order_relaxed);
  }
  /// Snapshot of the per-op launch histogram, keyed by name content;
  /// zero-count slots are elided, so the map is empty right after
  /// reset_counters().
  std::map<std::string, std::uint64_t> launch_counts() const;

  /// Zeroes all counters. Claimed name slots (interned names) are retained.
  /// Contract: call only while no kernels are launching — the single flow
  /// thread between phases. Debug builds assert no launch is in flight.
  void reset_counters();

  /// Human-readable per-op launch histogram.
  std::string report() const;

  /// Exports the launch accounting into `registry`: a total counter
  /// (`dispatch.launches`) plus one counter per op
  /// (`dispatch.launch.<name>`). Counters are overwritten with the snapshot
  /// value, so repeated publishes are idempotent.
  void publish(telemetry::Registry& registry) const;

 private:
  /// Counts the launch and returns the interned (process-lifetime) copy of
  /// `name` for the trace span. Pair with end_launch().
  const char* begin_launch(const char* name);
  void end_launch() { active_launches_.fetch_sub(1, std::memory_order_release); }

  /// Copies `name` into dispatcher-owned stable storage (deduplicated).
  /// Locks, but is only reached on the first sighting of a distinct name (or
  /// on slot-table overflow, which is a bug regime).
  const char* intern(const char* name);

  struct EndLaunchGuard {
    Dispatcher* d;
    ~EndLaunchGuard() { d->end_launch(); }
  };

  /// One per-op counter slot. `name` (an interned pointer) is claimed by CAS
  /// on first launch and never released; `count` is a relaxed atomic
  /// increment thereafter.
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> count{0};
  };
  /// Power of two, comfortably above the distinct op-name population (~60 in
  /// the full flow). Collisions probe linearly; a full table (a bug magnet,
  /// not a real regime) falls back to the overflow counter.
  static constexpr std::size_t kSlots = 512;

  double launch_latency_ = 0.0;
  std::atomic<std::uint64_t> total_launches_{0};
  std::atomic<std::uint64_t> overflow_launches_{0};
  std::atomic<std::int64_t> active_launches_{0};  ///< launches in flight
  std::array<Slot, kSlots> slots_;
  std::mutex intern_mutex_;
  std::set<std::string> interned_;  // node-based: c_str() pointers are stable
};

/// RAII guard that sets the global launch latency and restores it on exit.
class LaunchLatencyGuard {
 public:
  explicit LaunchLatencyGuard(double seconds)
      : saved_(Dispatcher::global().launch_latency()) {
    Dispatcher::global().set_launch_latency(seconds);
  }
  ~LaunchLatencyGuard() { Dispatcher::global().set_launch_latency(saved_); }
  LaunchLatencyGuard(const LaunchLatencyGuard&) = delete;
  LaunchLatencyGuard& operator=(const LaunchLatencyGuard&) = delete;

 private:
  double saved_;
};

}  // namespace xplace::tensor
