// Quickstart: generate a small synthetic design, run Xplace global placement,
// and print the resulting metrics.
//
//   ./quickstart [--cells 5000] [--mode xplace|dreamplace] [--grid 128]
//                [--verbose] [--csv trace.csv]
#include <cstdio>

#include "core/placer.h"
#include "db/stats.h"
#include "io/generator.h"
#include "util/arg_parser.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);

  io::GeneratorSpec spec;
  spec.name = "quickstart";
  spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 5000));
  spec.num_nets = spec.num_cells + spec.num_cells / 20;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  db::Database db = io::generate(spec);
  std::printf("%s\n%s\n", db::DesignStats::header().c_str(),
              db::compute_stats(db).row().c_str());

  core::PlacerConfig cfg = args.get("mode", "xplace") == "dreamplace"
                               ? core::PlacerConfig::dreamplace()
                               : core::PlacerConfig::xplace();
  cfg.grid_dim = static_cast<int>(args.get_int("grid", 128));
  cfg.verbose = args.get_bool("verbose", false);
  cfg.max_iters = static_cast<int>(args.get_int("max-iters", 1500));

  core::GlobalPlacer placer(db, cfg);
  const core::GlobalPlaceResult res = placer.run();

  std::printf("design=%s mode=%s iters=%d hpwl=%.6g overflow=%.4f gp_s=%.3f ms_per_iter=%.3f launches=%llu converged=%d\n",
              db.design_name().c_str(), args.get("mode", "xplace").c_str(),
              res.iterations, res.hpwl, res.overflow, res.gp_seconds,
              res.avg_iter_ms, static_cast<unsigned long long>(res.kernel_launches),
              res.converged ? 1 : 0);

  if (args.has("csv")) {
    placer.recorder().write(args.get("csv"));
    std::printf("trace written to %s\n", args.get("csv").c_str());
  }
  return 0;
}
