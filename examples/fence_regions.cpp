// Fence-region placement demo (the paper's future-work item): generate a
// design with voltage-island-style fence regions, run the multi-electrostatic
// global placer, legalize/detail-place fence-aware, verify legality, and dump
// an SVG showing the fences.
//
//   ./fence_regions [--cells 4000] [--fences 3] [--svg /tmp/fences.svg]
#include <cstdio>

#include "core/placer.h"
#include "dp/detailed_placer.h"
#include "io/generator.h"
#include "io/plot.h"
#include "lg/abacus.h"
#include "lg/checker.h"
#include "util/arg_parser.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);

  io::GeneratorSpec spec;
  spec.name = "fence_demo";
  spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 4000));
  spec.num_nets = spec.num_cells + spec.num_cells / 20;
  spec.num_fences = static_cast<int>(args.get_int("fences", 3));
  spec.fence_area_fraction = args.get_double("fence-area", 0.20);
  spec.fenced_cell_fraction = args.get_double("fenced-cells", 0.25);
  spec.seed = 33;
  db::Database db = io::generate(spec);

  std::size_t fenced = 0;
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    if (db.cell_fence(c) >= 0) ++fenced;
  }
  std::printf("design: %zu cells, %zu fences, %zu fenced cells\n",
              db.num_movable(), db.fences().size(), fenced);

  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  core::GlobalPlacer placer(db, cfg);
  const core::GlobalPlaceResult gp = placer.run();
  std::printf("GP (multi-electrostatic, %zu systems): hpwl %.6g overflow %.4f "
              "(%d iters, %.2fs)\n",
              db.fences().size() + 1, gp.hpwl, gp.overflow, gp.iterations,
              gp.gp_seconds);

  lg::abacus_legalize(db);
  dp::detailed_place(db);
  const lg::LegalityReport rep = lg::check_legality(db);
  std::printf("final: hpwl %.6g  %s\n", db.hpwl(), rep.summary().c_str());

  const std::string svg = args.get("svg", "/tmp/fence_demo.svg");
  io::write_placement_svg(db, svg);
  std::printf("layout written to %s\n", svg.c_str());
  return rep.legal() ? 0 : 1;
}
