// Stage-aware scheduling study (Section 3.2 / Algorithm 1): the paper argues
// that slowing parameter updates to once per 3 iterations in the intermediate
// stage (0.5 < ω < 0.95) "fully exploits the optimization space" and improves
// quality. This study isolates that claim: same designs, Xplace with and
// without Algorithm 1 (and a sweep of the update period).
//
//   ./stage_schedule_study [--cells 3000] [--designs 3]
#include <cstdio>

#include "core/placer.h"
#include "io/generator.h"
#include "util/arg_parser.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  log::set_level(log::Level::kWarn);
  ArgParser args(argc, argv);
  const std::size_t cells = static_cast<std::size_t>(args.get_int("cells", 3000));
  const int designs = static_cast<int>(args.get_int("designs", 3));

  struct Config {
    const char* label;
    bool stage_aware;
    int period;
  };
  const Config configs[] = {
      {"every-iteration (Alg.1 off)", false, 1},
      {"period 2", true, 2},
      {"period 3 (paper)", true, 3},
      {"period 5", true, 5},
  };

  std::printf("%-28s %12s %10s %8s %10s\n", "schedule", "sum HPWL", "sum iters",
              "conv", "sum GP s");
  for (const Config& c : configs) {
    double hpwl = 0.0, gp = 0.0;
    int iters = 0, converged = 0;
    for (int d = 0; d < designs; ++d) {
      io::GeneratorSpec spec;
      spec.name = "stage_study";
      spec.num_cells = cells;
      spec.num_nets = cells + cells / 20;
      spec.seed = 100 + static_cast<std::uint64_t>(d);
      db::Database db = io::generate(spec);
      core::PlacerConfig cfg = core::PlacerConfig::xplace();
      cfg.stage_aware_schedule = c.stage_aware;
      cfg.stage_update_period = c.period;
      core::GlobalPlacer placer(db, cfg);
      const core::GlobalPlaceResult res = placer.run();
      hpwl += res.hpwl;
      gp += res.gp_seconds;
      iters += res.iterations;
      converged += res.converged ? 1 : 0;
    }
    std::printf("%-28s %12.6g %10d %6d/%d %10.2f\n", c.label, hpwl, iters,
                converged, designs, gp);
  }
  std::printf("\n(The paper's claim: the intermediate-stage slowdown trades a "
              "few extra iterations for better HPWL.)\n");
  return 0;
}
