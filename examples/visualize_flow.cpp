// Visualization walkthrough: runs the full flow and dumps SVG layouts plus
// density/field heatmaps at each stage (initial, mid-GP, post-GP, post-DP).
//
//   ./visualize_flow [--cells 3000] [--outdir /tmp/xplace_viz]
#include <cstdio>
#include <filesystem>

#include "core/placer.h"
#include "dp/detailed_placer.h"
#include "io/generator.h"
#include "io/plot.h"
#include "lg/abacus.h"
#include "ops/density.h"
#include "ops/electrostatics.h"
#include "util/arg_parser.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);
  const std::string outdir = args.get("outdir", "/tmp/xplace_viz");
  std::filesystem::create_directories(outdir);

  io::GeneratorSpec spec;
  spec.name = "viz";
  spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 3000));
  spec.num_nets = spec.num_cells + spec.num_cells / 20;
  spec.num_fences = 1;
  spec.seed = 8;
  db::Database db = io::generate(spec);

  io::SvgOptions svg;
  svg.draw_nets = true;
  io::write_placement_svg(db, outdir + "/0_initial.svg", svg);

  // Mid-GP snapshot: run a capped GP first.
  {
    core::PlacerConfig cfg = core::PlacerConfig::xplace();
    cfg.max_iters = 150;
    cfg.stop_overflow = 0.0;
    core::GlobalPlacer placer(db, cfg);
    placer.run();
    io::write_placement_svg(db, outdir + "/1_mid_gp.svg", svg);
    // Density map + field at this stage.
    ops::DensityGrid grid(db, 128);
    std::vector<float> x(db.num_cells_total()), y(db.num_cells_total());
    for (std::size_t c = 0; c < db.num_cells_total(); ++c) {
      x[c] = static_cast<float>(db.x(c));
      y[c] = static_cast<float>(db.y(c));
    }
    std::vector<double> map(grid.num_bins());
    grid.accumulate_range("viz", x.data(), y.data(), 0, db.num_cells_total(),
                          map.data(), true);
    io::write_density_ppm(map, 128, outdir + "/1_density.ppm");
    ops::PoissonSolver solver(128, grid.bin_w(), grid.bin_h());
    solver.solve(map.data(), false);
    io::write_signed_map_ppm(solver.ex(), 128, outdir + "/1_field_x.ppm");
    io::write_signed_map_ppm(solver.ey(), 128, outdir + "/1_field_y.ppm");
  }

  // Finish GP from the snapshot (keep positions).
  {
    core::PlacerConfig cfg = core::PlacerConfig::xplace();
    cfg.center_init_noise = -1.0;  // keep current positions
    core::GlobalPlacer placer(db, cfg);
    const auto res = placer.run();
    std::printf("GP: hpwl %.6g overflow %.4f\n", res.hpwl, res.overflow);
    io::write_placement_svg(db, outdir + "/2_post_gp.svg", svg);
  }

  lg::abacus_legalize(db);
  dp::detailed_place(db);
  io::write_placement_svg(db, outdir + "/3_final.svg", svg);
  std::printf("final hpwl %.6g; images in %s\n", db.hpwl(), outdir.c_str());
  return 0;
}
