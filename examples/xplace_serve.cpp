// xplace_serve: the resident placement daemon (DESIGN.md §11).
//
// Listens on a Unix-domain socket and serves the JSON-lines protocol over a
// PlacementServer: bounded priority queue, N concurrent placement jobs, a
// server-wide worker-thread budget, streamed per-iteration progress, and
// cooperative cancellation. Pair with xplace_client, or speak the protocol
// directly:
//
//   ./xplace_serve --socket /tmp/xplace.sock --jobs 2 &
//   printf '{"cmd":"submit","demo_cells":2000,"max_iters":150}\n' \
//     | nc -U /tmp/xplace.sock
//
// Flags:
//   --socket PATH       listen socket (default /tmp/xplace.sock)
//   --jobs N            concurrent job slots (default 2)
//   --queue N           queued-job admission bound (default 64)
//   --job-threads N     worker threads per job when the submit does not say
//                       (default 1 — the bitwise-reproducible serial backend)
//   --thread-budget N   server-wide worker-thread cap (default jobs*job-threads)
//   --results N         terminal job records retained (default 256)
//   --spill DIR         periodic XPCK checkpoint spill per job into DIR
//   --spill-every N     iterations between spills (default 200)
//   --state-dir DIR     crash-safe operation (DESIGN.md §13): durable job
//                       journal + XPCK spills under DIR; on start the daemon
//                       replays the journal, re-enqueues queued jobs and
//                       resumes interrupted ones from their last snapshot
//   --journal-max-bytes N  journal disk budget before admission sheds
//                       (default 64 MiB)
//   --retries N         supervised retry budget for diverged/alloc-failed
//                       jobs (default 2)
//   --retry-backoff-s S base exponential backoff before a retry (default 0.5)
//   --design-capacity N resident parsed designs in the content-addressed
//                       design store before LRU eviction (default 16);
//                       evicted designs lazily re-parse on next use
//   --design-bytes N    resident-bytes bound for the design store
//                       (default 1 GiB)
//   --portfolio-poll-s S  racer sampling period for portfolio early-kill
//                       (default 0.25; <= 0 disables the racer — members
//                       still run to completion and a winner is selected)
//   --kill-min-iter N   grace iterations before a member can be judged a
//                       laggard (default 100)
//   --kill-margin R     laggard HPWL ratio vs the leader (default 1.15)
//   --kill-slack S      laggard overflow gap vs the leader (default 0.05)
//   --no-kill           default portfolios to racing without early-kill
//   --simd BACKEND      SIMD kernel table (auto|avx2|scalar|off)
//   --trace-out PATH    enable the span tracer and write a Chrome trace of
//                       every served job on exit; each job renders as its own
//                       process track named after its id/label (DESIGN.md §12)
//
// The daemon exits after a client `shutdown` request completes (drain or
// cancel — see the protocol).
#include <cstdio>

#include "server/server.h"
#include "server/uds.h"
#include "telemetry/export.h"
#include "telemetry/trace.h"
#include "util/arg_parser.h"
#include "util/backend_resolve.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);
  if (!args.ok()) {
    for (const std::string& e : args.errors()) XP_ERROR("%s", e.c_str());
    return 2;
  }

  // SIMD resolution is process-wide and first-call-wins: do it once here so
  // every job this daemon runs uses the same kernel table.
  if (!resolve_backend_flags(args.get("simd"), 0).ok) return 1;

  server::ServerConfig cfg;
  cfg.max_concurrency =
      static_cast<std::size_t>(args.get_int("jobs", 2));
  cfg.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 64));
  cfg.default_job_threads =
      static_cast<int>(args.get_int("job-threads", 1));
  cfg.thread_budget =
      static_cast<std::size_t>(args.get_int("thread-budget", 0));
  cfg.result_capacity =
      static_cast<std::size_t>(args.get_int("results", 256));
  cfg.spill_dir = args.get("spill");
  cfg.spill_period = static_cast<int>(args.get_int("spill-every", 200));
  cfg.state_dir = args.get("state-dir");
  cfg.journal_max_bytes = static_cast<std::size_t>(
      args.get_int("journal-max-bytes", 64ll << 20));
  cfg.max_retries = static_cast<int>(args.get_int("retries", 2));
  cfg.retry_backoff_s = args.get_double("retry-backoff-s", 0.5);
  cfg.design_capacity =
      static_cast<std::size_t>(args.get_int("design-capacity", 16));
  cfg.design_max_bytes = static_cast<std::size_t>(
      args.get_int("design-bytes", 1ll << 30));
  cfg.portfolio_poll_s = args.get_double("portfolio-poll-s", 0.25);
  cfg.portfolio_policy.min_iter =
      static_cast<int>(args.get_int("kill-min-iter", 100));
  cfg.portfolio_policy.hpwl_margin = args.get_double("kill-margin", 1.15);
  cfg.portfolio_policy.overflow_slack = args.get_double("kill-slack", 0.05);
  cfg.portfolio_policy.no_kill = args.get_bool("no-kill", false);

  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty()) telemetry::Tracer::global().enable();

  server::PlacementServer srv(cfg);
  const std::string socket_path = args.get("socket", "/tmp/xplace.sock");
  if (!server::serve(srv, socket_path)) return 1;

  if (!trace_out.empty()) {
    // serve() returns only after shutdown drained the workers, so the ring
    // is quiesced and the snapshot is exact. The label table maps each job's
    // trace id to its "job <id> (<label>)" track name.
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    std::string error;
    if (telemetry::write_text_file(
            trace_out,
            telemetry::to_chrome_trace(tracer.snapshot(), "xplace_serve",
                                       tracer.trace_labels()),
            &error)) {
      XP_INFO("wrote trace to %s (%llu spans recorded, %llu dropped)",
              trace_out.c_str(),
              static_cast<unsigned long long>(tracer.total_recorded()),
              static_cast<unsigned long long>(tracer.dropped()));
    } else {
      XP_ERROR("trace write failed: %s", error.c_str());
      return 1;
    }
  }
  return 0;
}
