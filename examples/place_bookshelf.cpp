// Full placement flow on a bookshelf design: parse → global place → legalize
// → detailed place → write the placed .pl (plus optional full bookshelf dump).
//
// Works on real ISPD 2005 contest files if you have them:
//   ./place_bookshelf path/to/adaptec1.aux --out /tmp/adaptec1.gp.pl
//
// Without contest files, --demo generates a synthetic design, writes it as
// bookshelf, and runs the flow on the written files — exercising the exact
// same code path a real benchmark would.
//
// Telemetry flags (see README "Profiling a run"):
//   --trace-out trace.json    record all spans (kernel launches, GP
//                             iterations, LG/DP phases) and write a Chrome
//                             trace-event file loadable in Perfetto
//   --metrics-out metrics.txt Prometheus-style dump of the metrics registry
//   --record-out gp.jsonl     per-iteration records (JSONL; .csv for CSV)
//
// Checkpoint/resume (see README "Resuming a run"):
//   --checkpoint-out ck.xpck  write a full GP checkpoint every
//                             --checkpoint-every iterations (default 100)
//   --resume ck.xpck          continue an interrupted run from a checkpoint;
//                             same seed + same flags reproduces the
//                             uninterrupted run bit-for-bit
//
// Execution backend (see README "Threads"):
//   --threads N               worker threads for GP/LG/DP kernels; 1 = the
//                             serial backend (default when XPLACE_THREADS is
//                             unset), N>1 = thread pool, -1 = all hardware
//                             threads. Omitting the flag defers to
//                             XPLACE_THREADS.
//   --simd BACKEND            SIMD kernel backend: auto (default), avx2, or
//                             scalar/off. Omitting the flag defers to
//                             XPLACE_SIMD; the selection is printed and
//                             published as the exec.simd.isa gauge.
//
// Wall-clock budget:
//   --timeout-s T             cooperative deadline over the whole flow: GP
//                             stops at the next iteration boundary, commits
//                             the guardian's best snapshot, and LG/DP are
//                             skipped — the written .pl always holds the
//                             best placement reached within the budget.
//
// Local-optima escape (see README "Escaping local optima"):
//   --kicks N                 after GP converges, run N hill-climb kicks:
//                             bounded random perturbation of the movable
//                             cells + λ/γ re-anneal, keeping a kicked result
//                             only when it improves HPWL — the final
//                             placement is never worse than the unkicked one
//   --seed S                  first-class run seed (derives the filler and
//                             init-noise streams; each perturbed restart is
//                             reproducible from this one number)
#include <cstdio>
#include <filesystem>

#include "core/placer.h"
#include "db/stats.h"
#include "dp/detailed_placer.h"
#include "io/bookshelf.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "lg/checker.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "tensor/dispatch.h"
#include "util/arg_parser.h"
#include "util/backend_resolve.h"
#include "util/execution.h"
#include "util/logging.h"
#include "util/stop_token.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);

  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty()) telemetry::Tracer::global().enable();

  // Backend knobs (explicit flag wins over XPLACE_SIMD / XPLACE_THREADS);
  // shared resolution with the other CLIs and the serve daemon.
  const BackendResolution backend = resolve_backend_flags(
      args.get("simd"), static_cast<int>(args.get_int("threads", 0)));
  if (!backend.ok) return 1;

  std::string aux_path;
  if (args.get_bool("demo", false) || args.positional().empty()) {
    // Self-contained demo: synthesize, dump to bookshelf, read it back.
    const std::string dir =
        std::filesystem::temp_directory_path() / "xplace_demo";
    std::filesystem::create_directories(dir);
    io::GeneratorSpec spec;
    spec.name = "demo";
    spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 4000));
    spec.num_nets = spec.num_cells + spec.num_cells / 20;
    spec.seed = 11;
    db::Database gen = io::generate(spec);
    io::write_bookshelf(gen, dir, "demo");
    aux_path = dir + "/demo.aux";
    std::printf("demo bookshelf written to %s\n", aux_path.c_str());
  } else {
    aux_path = args.positional()[0];
  }

  db::Database db = io::read_bookshelf_aux(aux_path);
  std::printf("%s\n%s\n", db::DesignStats::header().c_str(),
              db::compute_stats(db).row().c_str());

  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = static_cast<int>(args.get_int("grid", 128));
  cfg.max_iters = static_cast<int>(args.get_int("max-iters", 1500));
  cfg.checkpoint_out = args.get("checkpoint-out");
  cfg.checkpoint_period = static_cast<int>(args.get_int("checkpoint-every", 100));
  cfg.resume_path = args.get("resume");
  cfg.threads = backend.threads;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  cfg.kicks = static_cast<int>(args.get_int("kicks", 0));
  core::GlobalPlacer placer(db, cfg);
  const ExecutionContext& exec = placer.execution();
  std::printf("%s\n", backend_summary(exec).c_str());

  StopToken stop;
  const double timeout_s = args.get_double("timeout-s", 0.0);
  if (timeout_s > 0) {
    stop.set_timeout(timeout_s);
    placer.set_stop_token(&stop);
  }

  const core::GlobalPlaceResult gp = placer.run();
  std::printf("GP:  hpwl %.6g  overflow %.4f  (%d iters, %.2fs, stop: %s)\n",
              gp.hpwl, gp.overflow, gp.iterations, gp.gp_seconds,
              core::to_string(gp.stop_reason));
  // Per-phase kernel time: the numbers to compare across --threads values.
  const TimerRegistry& phases = placer.engine().phase_timers();
  std::printf(
      "GP phases: wirelength %.3fs  density %.3fs (fft %.3fs, field %.3fs)\n",
      phases.total("gp.phase.wirelength"), phases.total("gp.phase.density"),
      phases.total("gp.phase.fft"), phases.total("gp.phase.field"));
  if (gp.kicks_attempted > 0) {
    std::printf("GP kicks: %d attempted, %d accepted\n", gp.kicks_attempted,
                gp.kicks_accepted);
  }
  if (gp.rollbacks > 0 || gp.diverged) {
    std::printf("GP guardian: %d sentinel trip(s), %d rollback(s)%s\n",
                gp.sentinel_trips, gp.rollbacks,
                gp.diverged ? ", stopped on divergence at best-known iterate"
                            : "");
  }

  const bool stopped = gp.stop_reason == core::StopReason::kCancelled ||
                       gp.stop_reason == core::StopReason::kDeadline;
  bool legal = true;
  if (stopped) {
    // Budget exhausted: skip LG/DP; the database holds the committed
    // best-snapshot GP positions, which we still write out below.
    std::printf("flow stopped (%s) — skipping LG/DP\n",
                core::to_string(gp.stop_reason));
  } else {
    const lg::LegalizeStats lgs = lg::abacus_legalize(db, &exec);
    std::printf("LG:  %s\n", lgs.summary().c_str());

    dp::DetailedPlaceConfig dcfg;
    dcfg.stop = timeout_s > 0 ? &stop : nullptr;
    const dp::DetailedPlaceResult dps = dp::detailed_place(db, dcfg, &exec);
    std::printf("DP:  %s\n", dps.summary().c_str());

    const lg::LegalityReport rep = lg::check_legality(db);
    std::printf("legality: %s\n", rep.summary().c_str());
    legal = rep.legal();
  }

  const std::string out = args.get("out", "/tmp/xplace_out.pl");
  io::write_pl(db, out);
  std::printf("placed .pl written to %s\n", out.c_str());

  // Telemetry exports. The dispatcher and recorder publish into the global
  // registry so one Prometheus dump carries launch counts, per-iteration
  // stats, and run-level gauges.
  if (!args.get("record-out").empty()) {
    if (placer.recorder().write(args.get("record-out"))) {
      std::printf("per-iteration records written to %s\n",
                  args.get("record-out").c_str());
    }
  }
  if (!args.get("metrics-out").empty()) {
    tensor::Dispatcher::global().publish(telemetry::Registry::global());
    std::string error;
    if (telemetry::write_text_file(
            args.get("metrics-out"),
            telemetry::to_prometheus(telemetry::Registry::global()), &error)) {
      std::printf("metrics written to %s\n", args.get("metrics-out").c_str());
    } else {
      XP_ERROR("cannot write %s: %s", args.get("metrics-out").c_str(),
               error.c_str());
    }
  }
  if (!trace_out.empty()) {
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    std::string error;
    if (telemetry::write_text_file(
            trace_out, telemetry::to_chrome_trace(tracer.snapshot(), "xplace " + db.design_name()),
            &error)) {
      std::printf(
          "chrome trace written to %s (%zu spans, %llu dropped) — load in "
          "ui.perfetto.dev\n",
          trace_out.c_str(), tracer.snapshot().size(),
          static_cast<unsigned long long>(tracer.dropped()));
    } else {
      XP_ERROR("cannot write %s: %s", trace_out.c_str(), error.c_str());
    }
  }
  return legal ? 0 : 1;
}
