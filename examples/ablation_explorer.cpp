// Interactive ablation explorer: toggle the four operator-level optimization
// techniques (Section 3.1) and the stage-aware scheduler (Section 3.2) on a
// synthetic design and inspect per-iteration time, kernel launches and
// solution quality.
//
//   ./ablation_explorer --cells 4000 --no-oc --no-os --launch-us 8
#include <cstdio>

#include "core/placer.h"
#include "io/generator.h"
#include "tensor/dispatch.h"
#include "util/arg_parser.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);

  io::GeneratorSpec spec;
  spec.name = "ablation";
  spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 4000));
  spec.num_nets = spec.num_cells + spec.num_cells / 20;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.op_reduction = !args.get_bool("no-or", false);
  cfg.op_combination = !args.get_bool("no-oc", false);
  cfg.op_extraction = !args.get_bool("no-oe", false);
  cfg.op_skipping = !args.get_bool("no-os", false);
  cfg.stage_aware_schedule = !args.get_bool("no-stage", false);
  cfg.grid_dim = static_cast<int>(args.get_int("grid", 128));
  cfg.max_iters = static_cast<int>(args.get_int("max-iters", 1200));

  tensor::LaunchLatencyGuard latency(args.get_double("launch-us", 0.0) * 1e-6);

  std::printf("config: OR=%d OC=%d OE=%d OS=%d stage-aware=%d launch-latency=%gus\n",
              cfg.op_reduction, cfg.op_combination, cfg.op_extraction,
              cfg.op_skipping, cfg.stage_aware_schedule,
              args.get_double("launch-us", 0.0));

  db::Database db = io::generate(spec);
  tensor::Dispatcher::global().reset_counters();
  core::GlobalPlacer placer(db, cfg);
  const core::GlobalPlaceResult res = placer.run();

  std::printf("result: hpwl %.6g  overflow %.4f  %d iters  %.2fs "
              "(%.3f ms/iter, %.1f launches/iter)\n",
              res.hpwl, res.overflow, res.iterations, res.gp_seconds,
              res.avg_iter_ms,
              static_cast<double>(res.kernel_launches) / res.iterations);
  std::printf("\nper-operator launch histogram:\n%s",
              tensor::Dispatcher::global().report().c_str());
  return 0;
}
