// Xplace-NN end to end (Section 3.3): train the Fourier field network on
// synthetic data, plug it into the gradient engine, and compare plain Xplace
// vs neural-guided Xplace on the same design.
//
//   ./neural_guided [--cells 4000] [--steps 400] [--save model.bin]
//                   [--load model.bin]
#include <cstdio>

#include "core/placer.h"
#include "io/generator.h"
#include "nn/data.h"
#include "nn/fno.h"
#include "nn/guidance.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);

  nn::FieldNet net;
  std::printf("FieldNet: %zu parameters (paper: 471k)\n", net.num_params());

  if (args.has("load")) {
    net.load(args.get("load"));
    std::printf("loaded model from %s\n", args.get("load").c_str());
  } else {
    const int steps = static_cast<int>(args.get_int("steps", 400));
    Stopwatch watch;
    nn::Adam opt(net.parameters(), 2e-3);
    auto data = nn::make_field_dataset(32, 24, 2027);
    std::vector<double> grad;
    double loss = 0.0;
    for (int step = 0; step < steps; ++step) {
      const nn::FieldSample& s = data[step % data.size()];
      const auto input = nn::FieldNet::make_input(s.density, 32, 32);
      loss = nn::relative_l2(net.forward(input, 32, 32), s.field_x, grad);
      net.zero_grad();
      net.backward(grad);
      opt.step();
      if (step % 100 == 0) std::printf("  step %4d rel-L2 %.3f\n", step, loss);
    }
    std::printf("trained %d steps in %.1fs (final rel-L2 %.3f)\n", steps,
                watch.seconds(), loss);
    if (args.has("save")) {
      net.save(args.get("save"));
      std::printf("model saved to %s\n", args.get("save").c_str());
    }
  }

  io::GeneratorSpec spec;
  spec.name = "neural_demo";
  spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 4000));
  spec.num_nets = spec.num_cells + spec.num_cells / 20;
  spec.seed = 21;

  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 128;

  db::Database plain = io::generate(spec);
  core::GlobalPlacer p1(plain, cfg);
  const core::GlobalPlaceResult r1 = p1.run();

  db::Database guided = io::generate(spec);
  core::GlobalPlacer p2(guided, cfg);
  nn::FnoGuidance guide(&net, /*predict_every=*/2, /*sigma_cutoff=*/0.02,
                        /*predict_grid=*/64, /*r_cutoff=*/0.3);
  p2.set_field_guidance(&guide);
  const core::GlobalPlaceResult r2 = p2.run();

  std::printf("\nXplace     : hpwl %.6g  overflow %.4f  gp %.2fs\n", r1.hpwl,
              r1.overflow, r1.gp_seconds);
  std::printf("Xplace-NN  : hpwl %.6g  overflow %.4f  gp %.2fs  (%ld NN evals)\n",
              r2.hpwl, r2.overflow, r2.gp_seconds, guide.evaluations());
  std::printf("HPWL delta : %+.3f%%\n", (r2.hpwl / r1.hpwl - 1.0) * 100.0);
  return 0;
}
