// Routability-driven placement loop (the paper's stated future work, built
// from this repository's pieces): GP → congestion estimation → cell
// inflation → GP again, then compare wirelength and congestion metrics.
//
//   ./routability_driven [--cells 4000] [--rounds 2] [--tracks 6]
#include <cstdio>

#include "core/placer.h"
#include "dp/detailed_placer.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "route/congestion.h"
#include "route/inflation.h"
#include "util/arg_parser.h"
#include "util/logging.h"

namespace {

using namespace xplace;

io::GeneratorSpec make_spec(const ArgParser& args) {
  io::GeneratorSpec spec;
  spec.name = "routability_demo";
  spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 4000));
  spec.num_nets = spec.num_cells + spec.num_cells / 10;
  spec.avg_net_degree = 4.2;  // denser connectivity → real congestion
  spec.seed = 41;
  return spec;
}

struct FlowResult {
  double hpwl;
  route::CongestionResult congestion;
};

FlowResult place_and_measure(db::Database& db,
                             const route::CongestionConfig& ccfg) {
  core::GlobalPlacer placer(db, core::PlacerConfig::xplace());
  placer.run();
  lg::abacus_legalize(db);
  dp::detailed_place(db);
  return {db.hpwl(), route::estimate_congestion(db, ccfg)};
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  route::CongestionConfig ccfg;
  ccfg.grid = 32;
  ccfg.tracks_per_gcell = args.get_double("tracks", 6.0);
  const int rounds = static_cast<int>(args.get_int("rounds", 2));

  // Baseline: plain wirelength-driven flow.
  db::Database base = io::generate(make_spec(args));
  const FlowResult baseline = place_and_measure(base, ccfg);
  std::printf("baseline : hpwl %.6g  %s\n", baseline.hpwl,
              baseline.congestion.summary().c_str());

  // Routability loop: re-place with congestion-driven inflation. Each round
  // starts from a fresh database (GP re-runs fully), carrying only the
  // accumulated inflation factors.
  std::vector<double> factors;
  route::CongestionResult last = baseline.congestion;
  double hpwl = baseline.hpwl;
  for (int round = 0; round < rounds; ++round) {
    // Factors are looked up at the *previous* placement's positions (`base`
    // holds the most recent placed database), then applied to a fresh design.
    std::vector<double> f = route::compute_inflation_factors(base, last);
    db::Database db = io::generate(make_spec(args));
    if (factors.empty()) {
      factors = f;
    } else {
      for (std::size_t c = 0; c < factors.size(); ++c) {
        factors[c] = std::max(factors[c], f[c]);
      }
    }
    route::apply_inflation(db, factors);
    FlowResult res = place_and_measure(db, ccfg);
    std::printf("round %-2d : hpwl %.6g  %s\n", round + 1, res.hpwl,
                res.congestion.summary().c_str());
    last = res.congestion;
    hpwl = res.hpwl;
    base = std::move(db);
  }

  std::printf("\nsummary: top5 utilization %.3f -> %.3f, hpwl %+0.2f%%\n",
              baseline.congestion.top5_utilization, last.top5_utilization,
              (hpwl / baseline.hpwl - 1.0) * 100.0);
  return 0;
}
