// Routability analysis of a placement (the ISPD 2015 evaluation path):
// place a design, then print the congestion map summary and an ASCII heatmap
// of gcell utilization.
//
//   ./congestion_report [--cells 4000] [--gcells 32] [--tracks 8]
#include <algorithm>
#include <cstdio>

#include "core/placer.h"
#include "dp/detailed_placer.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "route/congestion.h"
#include "util/arg_parser.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);

  io::GeneratorSpec spec;
  spec.name = "congestion_demo";
  spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 4000));
  spec.num_nets = spec.num_cells + spec.num_cells / 20;
  spec.seed = 5;
  db::Database db = io::generate(spec);

  core::GlobalPlacer placer(db, core::PlacerConfig::xplace());
  placer.run();
  lg::abacus_legalize(db);
  dp::detailed_place(db);

  route::CongestionConfig cfg;
  cfg.grid = static_cast<int>(args.get_int("gcells", 32));
  cfg.tracks_per_gcell = args.get_double("tracks", 8.0);
  const route::CongestionResult res = route::estimate_congestion(db, cfg);
  std::printf("congestion: %s\n\n", res.summary().c_str());

  // ASCII heatmap of combined H+V utilization (top = max y).
  const char* shades = " .:-=+*#%@";
  std::printf("gcell utilization heatmap (%dx%d, capacity %.0f tracks/dir):\n",
              cfg.grid, cfg.grid, cfg.tracks_per_gcell);
  for (int iy = cfg.grid - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < cfg.grid; ++ix) {
      const std::size_t b = static_cast<std::size_t>(ix) * cfg.grid + iy;
      const double util = 0.5 * (res.demand_h[b] / res.capacity_h +
                                 res.demand_v[b] / res.capacity_v);
      const int level = std::clamp(static_cast<int>(util * 9.99), 0, 9);
      std::putchar(shades[level]);
    }
    std::putchar('\n');
  }
  return 0;
}
