// xplace_client: command-line client for the xplace_serve daemon.
//
// Speaks the JSON-lines protocol over the daemon's Unix socket and prints
// the raw response lines, so output is pipeable into jq. Exit code 0 iff
// the final response line says ok.
//
//   xplace_client submit --demo-cells 2000 --max-iters 200 --label run1
//   xplace_client submit --aux adaptec1.aux --priority 5 --deadline-s 600
//   xplace_client status --id 1
//   xplace_client result --id 1 --wait --timeout-s 600
//   xplace_client events --id 1 --follow
//   xplace_client cancel --id 1
//   xplace_client stats
//   xplace_client shutdown [--no-drain]
//
// Common flags: --socket PATH (default /tmp/xplace.sock).
// Submit flags: --aux PATH | --demo-cells N [--demo-seed S], --max-iters N,
//   --grid N, --threads N (per-job workers; 0 = server default), --gp-only,
//   --priority P, --deadline-s T, --label NAME.
// Events flags: --id N, --from SEQ, --timeout-s T (--follow = a whole-run
//   budget of 3600s).
#include <cstdio>
#include <string>

#include "server/json.h"
#include "server/protocol.h"
#include "server/uds.h"
#include "util/arg_parser.h"
#include "util/logging.h"

namespace {

using namespace xplace;
using namespace xplace::server;

int usage() {
  std::fprintf(stderr,
               "usage: xplace_client [--socket PATH] "
               "submit|status|cancel|result|events|stats|shutdown [flags]\n"
               "(see the header comment of examples/xplace_client.cpp)\n");
  return 2;
}

bool command_from_name(const std::string& name, Command* out) {
  if (name == "submit") *out = Command::kSubmit;
  else if (name == "status") *out = Command::kStatus;
  else if (name == "cancel") *out = Command::kCancel;
  else if (name == "result") *out = Command::kResult;
  else if (name == "events") *out = Command::kEvents;
  else if (name == "stats") *out = Command::kStats;
  else if (name == "shutdown") *out = Command::kShutdown;
  else return false;
  return true;
}

/// True when `line` is a final `{"ok":...}` response (vs a streamed
/// `{"event":...}` line); sets *ok from it.
bool is_final_response(const std::string& line, bool* ok) {
  json::Value v;
  std::string error;
  if (!json::parse(line, &v, &error) || !v.is_object() || !v.has("ok")) {
    return false;
  }
  *ok = v.get_bool("ok", false);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.positional().empty()) return usage();

  Request req;
  if (!command_from_name(args.positional()[0], &req.cmd)) return usage();
  req.id = static_cast<std::uint64_t>(args.get_int("id", 0));
  req.from_seq = static_cast<std::uint64_t>(args.get_int("from", 0));
  req.wait = args.get_bool("wait", false);
  req.timeout_s = args.get_double(
      "timeout-s", args.get_bool("follow", false) ? 3600.0 : 60.0);
  req.drain = !args.get_bool("no-drain", false);
  if (req.cmd == Command::kSubmit) {
    JobSpec& s = req.spec;
    s.aux = args.get("aux");
    s.demo_cells = args.get_int("demo-cells", 0);
    s.demo_seed = static_cast<std::uint64_t>(args.get_int("demo-seed", 11));
    s.max_iters = static_cast<int>(args.get_int("max-iters", 1500));
    s.grid = static_cast<int>(args.get_int("grid", 128));
    s.threads = static_cast<int>(args.get_int("threads", 0));
    s.full_flow = !args.get_bool("gp-only", false);
    s.priority = static_cast<int>(args.get_int("priority", 0));
    s.deadline_s = args.get_double("deadline-s", 0.0);
    s.label = args.get("label");
    if (s.aux.empty() && s.demo_cells <= 0) {
      std::fprintf(stderr, "submit needs --aux PATH or --demo-cells N\n");
      return 2;
    }
  }

  const std::string socket_path = args.get("socket", "/tmp/xplace.sock");
  UdsStream stream = UdsStream::connect(socket_path);
  if (!stream.valid()) {
    XP_ERROR("cannot connect to %s (is xplace_serve running?)",
             socket_path.c_str());
    return 1;
  }
  if (!stream.write_line(build_request(req))) {
    XP_ERROR("write failed");
    return 1;
  }

  // One response line per command; `events` streams event lines first and
  // closes with the final ok line.
  std::string line;
  bool oversized = false;
  bool ok = false;
  while (stream.read_line(&line, &oversized)) {
    if (oversized) continue;
    std::printf("%s\n", line.c_str());
    if (is_final_response(line, &ok)) return ok ? 0 : 1;
  }
  XP_ERROR("connection closed before a response arrived");
  return 1;
}
