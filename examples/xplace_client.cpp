// xplace_client: command-line client for the xplace_serve daemon.
//
// Speaks the JSON-lines protocol over the daemon's Unix socket and prints
// the raw response lines, so output is pipeable into jq. Exit code 0 iff
// the final response line says ok.
//
//   xplace_client submit --demo-cells 2000 --max-iters 200 --label run1
//   xplace_client submit --aux adaptec1.aux --priority 5 --deadline-s 600
//   xplace_client status --id 1
//   xplace_client result --id 1 --wait --timeout-s 600
//   xplace_client events --id 1 --follow
//   xplace_client cancel --id 1
//   xplace_client stats
//   xplace_client metrics                      # Prometheus text exposition
//   xplace_client watch [--interval-s 2] [--count N]
//   xplace_client shutdown [--no-drain]
//
// Design-store + batch-sweep verbs (DESIGN.md §14):
//
//   xplace_client upload --aux adaptec1.aux        # parse once, get the hash
//   xplace_client upload --demo-cells 4000
//   xplace_client designs                          # list the store
//   xplace_client evict --design a1b2c3...
//   xplace_client sweep --design a1b2c3... --max-iters 500 --seeds 1,2,3
//   xplace_client sweep --demo-cells 4000 --seeds 1,2 --densities 0.7,0.9
//   xplace_client batch-status --id 3
//   xplace_client batch-result --id 3 --wait --timeout-s 600
//   xplace_client batch-cancel --id 3              # stop spending on a sweep
//
// Portfolio-racing verbs (DESIGN.md §16):
//
//   xplace_client portfolio --design a1b2c3... --k 4 --seed 1 \
//       --max-iters 800 --deadline-s 300
//   xplace_client portfolio-status --id 1
//   xplace_client portfolio-result --id 1 --wait --timeout-s 600
//
// `portfolio` launches K perturbed restarts of one design (distinct seeds,
// noise-injected anchors, varied γ/λ schedules — a deterministic plan from
// (K, --seed)) raced under --deadline-s; the daemon's racer early-kills
// strict laggards unless --no-kill. Racer overrides: --kill-min-iter N,
// --kill-margin R, --kill-slack S. `portfolio-result` reports the aggregate
// plus the winner's full job object.
//
// `sweep` fans one design (uploaded hash, --aux, or --demo-cells — parsed at
// most once server-side) across the cross-product-free union of the sweep
// axes: one config per entry of --seeds, --densities (target density), and
// --lambdas (λ init factor), each starting from the base flags. Listing a
// value twice submits it twice — with dedup (default on; --no-dedup) the
// repeat is served by the first job instead of re-running.
//
// `metrics` prints the daemon's Prometheus exposition (the scrape surface of
// DESIGN.md §12) as plain text. `watch` is a live dashboard: it polls
// stats+metrics over one connection and redraws queue depth, running jobs,
// SLO counters, and the latency percentile table every interval.
//
// Common flags: --socket PATH (default /tmp/xplace.sock).
//   --connect-retries N / --connect-backoff-s S: every connect (including
//   reconnects mid-stream) retries with bounded exponential backoff — a
//   daemon restarting under --state-dir is a normal event, not an error
//   (defaults: 5 retries from 0.2s).
// Submit flags: --aux PATH | --demo-cells N [--demo-seed S], --max-iters N,
//   --grid N, --threads N (per-job workers; 0 = server default), --gp-only,
//   --priority P, --deadline-s T, --label NAME.
// Events flags: --id N, --from SEQ, --timeout-s T (--follow = a whole-run
//   budget of 3600s; on a dropped connection --follow reconnects and resumes
//   from the last streamed seq instead of dying mid-run).
// Result flags: --id N, --wait, --timeout-s T (per request),
//   --wait-timeout-s T (overall bound across reconnects; exit 3 when the job
//   is still not terminal — e.g. it was shed, or the daemon restarted
//   without it). The same --wait-timeout-s bound (and exit 3) applies to
//   batch-result --wait and portfolio-result --wait.
// Watch flags: --interval-s T (default 2), --count N (polls; 0 = forever),
//   --no-clear (append screens instead of redrawing in place).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "server/json.h"
#include "server/protocol.h"
#include "server/uds.h"
#include "util/arg_parser.h"
#include "util/logging.h"

namespace {

using namespace xplace;
using namespace xplace::server;

/// Read-side line cap for metrics-bearing responses: the whole Prometheus
/// exposition arrives as one line, which can exceed the 64 KiB protocol
/// default on a daemon with many per-job metric families.
constexpr std::size_t kMetricsLineCap = 4u << 20;

double steady_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Connect with bounded exponential backoff: `retries` extra attempts after
/// the first, doubling from `base_s` (capped at 10s). Returns an invalid
/// stream when every attempt failed.
UdsStream connect_with_backoff(const std::string& path, long retries,
                               double base_s) {
  double backoff = std::max(0.05, base_s);
  for (long attempt = 0;; ++attempt) {
    UdsStream stream = UdsStream::connect(path);
    if (stream.valid() || attempt >= retries) return stream;
    std::fprintf(stderr,
                 "connect to %s failed (attempt %ld/%ld); retrying in %.1fs\n",
                 path.c_str(), attempt + 1, retries, backoff);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    backoff = std::min(backoff * 2.0, 10.0);
  }
}

bool is_terminal_state(const std::string& state) {
  return state == "done" || state == "cancelled" || state == "failed" ||
         state == "shed";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: xplace_client [--socket PATH] "
      "submit|status|cancel|result|events|stats|metrics|watch|shutdown|"
      "upload|designs|evict|sweep|batch-status|batch-result|batch-cancel|"
      "portfolio|portfolio-status|portfolio-result [flags]\n"
      "(see the header comment of examples/xplace_client.cpp)\n");
  return 2;
}

bool command_from_name(const std::string& name, Command* out) {
  if (name == "submit") *out = Command::kSubmit;
  else if (name == "status") *out = Command::kStatus;
  else if (name == "cancel") *out = Command::kCancel;
  else if (name == "result") *out = Command::kResult;
  else if (name == "events") *out = Command::kEvents;
  else if (name == "stats") *out = Command::kStats;
  else if (name == "metrics") *out = Command::kMetrics;
  else if (name == "shutdown") *out = Command::kShutdown;
  else if (name == "upload") *out = Command::kUploadDesign;
  else if (name == "designs") *out = Command::kListDesigns;
  else if (name == "evict") *out = Command::kEvictDesign;
  else if (name == "sweep") *out = Command::kSubmitBatch;
  else if (name == "batch-status") *out = Command::kBatchStatus;
  else if (name == "batch-result") *out = Command::kBatchResult;
  else if (name == "batch-cancel") *out = Command::kBatchCancel;
  else if (name == "portfolio") *out = Command::kSubmitPortfolio;
  else if (name == "portfolio-status") *out = Command::kPortfolioStatus;
  else if (name == "portfolio-result") *out = Command::kPortfolioResult;
  else return false;
  return true;
}

/// "1,2,3" → {"1","2","3"} (empty pieces skipped).
std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// True when `line` is a final `{"ok":...}` response (vs a streamed
/// `{"event":...}` line); sets *ok from it.
bool is_final_response(const std::string& line, bool* ok) {
  json::Value v;
  std::string error;
  if (!json::parse(line, &v, &error) || !v.is_object() || !v.has("ok")) {
    return false;
  }
  *ok = v.get_bool("ok", false);
  return true;
}

/// Sends one request and parses its single response line into *out.
/// False on transport failure, an oversized line, or {"ok":false}.
bool round_trip(UdsStream& stream, const Request& req, json::Value* out) {
  if (!stream.write_line(build_request(req))) return false;
  std::string line;
  bool oversized = false;
  if (!stream.read_line(&line, &oversized) || oversized) return false;
  std::string error;
  if (!json::parse(line, out, &error) || !out->is_object()) return false;
  return out->get_bool("ok", false);
}

/// Non-#-comment line count of a Prometheus exposition = series scraped.
std::size_t count_series(const std::string& text) {
  std::size_t n = 0;
  bool at_line_start = true;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (at_line_start && text[i] != '#' && text[i] != '\n') ++n;
    at_line_start = text[i] == '\n';
    if (!at_line_start) {
      const std::size_t nl = text.find('\n', i);
      if (nl == std::string::npos) break;
      i = nl;
      at_line_start = true;
    }
  }
  return n;
}

void print_latency_row(const json::Value& lat, const char* key,
                       const char* name) {
  const json::Value* row = lat.find(key);
  if (row == nullptr || !row->is_object()) return;
  std::printf("  %-11s %9.3fs %9.3fs %9.3fs %8.0f\n", name,
              row->get_number("p50", 0.0), row->get_number("p95", 0.0),
              row->get_number("p99", 0.0), row->get_number("count", 0.0));
}

/// Live dashboard: polls stats + metrics over one connection and redraws.
int run_watch(UdsStream& stream, const std::string& socket_path,
              double interval_s, long count, bool clear) {
  stream.set_max_line(kMetricsLineCap);
  Request stats_req;
  stats_req.cmd = Command::kStats;
  Request metrics_req;
  metrics_req.cmd = Command::kMetrics;
  for (long poll = 0; count <= 0 || poll < count; ++poll) {
    if (poll > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(0.1, interval_s)));
    }
    json::Value stats, metrics;
    if (!round_trip(stream, stats_req, &stats) ||
        !round_trip(stream, metrics_req, &metrics)) {
      std::fprintf(stderr, "watch: daemon went away\n");
      return 1;
    }
    if (clear) std::printf("\033[2J\033[H");  // clear screen, home cursor
    std::printf("xplace_serve @ %s   poll %ld%s, every %.1fs\n\n",
                socket_path.c_str(), poll + 1,
                count > 0 ? ("/" + std::to_string(count)).c_str() : "",
                interval_s);
    std::printf("queue    %.0f / %.0f queued    %.0f running (max %.0f)    "
                "threads %.0f / %.0f    accepting %s\n",
                stats.get_number("queued", 0.0),
                stats.get_number("queue_capacity", 0.0),
                stats.get_number("running", 0.0),
                stats.get_number("max_concurrency", 0.0),
                stats.get_number("threads_leased", 0.0),
                stats.get_number("thread_budget", 0.0),
                stats.get_bool("accepting", false) ? "yes" : "no");
    std::printf("jobs     %.0f submitted   %.0f done   %.0f cancelled   "
                "%.0f failed   %.0f rejected\n",
                stats.get_number("submitted", 0.0),
                stats.get_number("completed", 0.0),
                stats.get_number("cancelled", 0.0),
                stats.get_number("failed", 0.0),
                stats.get_number("rejected", 0.0));
    std::printf("SLO      %.0f deadline missed   %.0f events dropped\n\n",
                stats.get_number("deadline_missed", 0.0),
                stats.get_number("events_dropped", 0.0));
    const json::Value* lat = stats.find("latency");
    if (lat != nullptr && lat->is_object()) {
      std::printf("  %-11s %10s %10s %10s %8s\n", "latency", "p50", "p95",
                  "p99", "count");
      print_latency_row(*lat, "queue_wait_s", "queue wait");
      print_latency_row(*lat, "run_s", "run");
      print_latency_row(*lat, "e2e_s", "e2e");
    }
    std::printf("\nmetrics  %zu series from `metrics` scrape\n",
                count_series(metrics.get_string("metrics")));
    std::fflush(stdout);
  }
  return 0;
}

/// `events` with restart resilience: streams lines, tracking the last event
/// seq; when --follow and the connection drops mid-stream (daemon restart,
/// EPIPE/ECONNRESET), reconnects with backoff and resumes from seq+1. A
/// daemon answering "unknown or evicted job id" after its restart ends the
/// follow with that error printed (exit 1), not a transport crash.
int run_events(Request req, const std::string& socket_path, bool follow,
               long retries, double backoff_s) {
  UdsStream stream = connect_with_backoff(socket_path, retries, backoff_s);
  if (!stream.valid()) {
    XP_ERROR("cannot connect to %s (is xplace_serve running?)",
             socket_path.c_str());
    return 1;
  }
  while (true) {
    bool got_final = false;
    bool ok = false;
    if (stream.write_line(build_request(req))) {
      std::string line;
      bool oversized = false;
      while (stream.read_line(&line, &oversized)) {
        if (oversized) continue;
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
        json::Value v;
        std::string error;
        if (json::parse(line, &v, &error)) {
          if (const json::Value* ev = v.find("event");
              ev != nullptr && ev->is_object()) {
            req.from_seq =
                static_cast<std::uint64_t>(ev->get_number("seq", 0.0)) + 1;
          }
        }
        if (is_final_response(line, &ok)) {
          got_final = true;
          break;
        }
      }
    }
    if (got_final) return ok ? 0 : 1;
    if (!follow) {
      XP_ERROR("connection closed before a response arrived");
      return 1;
    }
    std::fprintf(stderr,
                 "events: stream interrupted; resuming from seq %llu\n",
                 static_cast<unsigned long long>(req.from_seq));
    stream = connect_with_backoff(socket_path, retries, backoff_s);
    if (!stream.valid()) {
      XP_ERROR("daemon did not come back on %s", socket_path.c_str());
      return 1;
    }
  }
}

/// Terminal check for the three waitable responses: a job line carries its
/// "state" at top level; batch/portfolio lines carry an "all_terminal" flag
/// on their aggregate object.
bool response_settled(Command cmd, const json::Value& v) {
  switch (cmd) {
    case Command::kResult:
      return is_terminal_state(v.get_string("state"));
    case Command::kBatchResult: {
      const json::Value* b = v.find("batch");
      return b != nullptr && b->is_object() &&
             b->get_bool("all_terminal", false);
    }
    case Command::kPortfolioResult: {
      const json::Value* p = v.find("portfolio");
      return p != nullptr && p->is_object() &&
             p->get_bool("all_terminal", false);
    }
    default:
      return true;
  }
}

/// `result|batch-result|portfolio-result --wait` with an overall bound:
/// re-issues bounded waits (surviving daemon restarts in between) until the
/// target is terminal, the daemon reports it unknown (exit 1), or
/// --wait-timeout-s elapses (exit 3). One implementation so the three wait
/// verbs honor the bound identically.
int run_bounded_wait(const Request& req, const std::string& socket_path,
                     double wait_timeout_s, long retries, double backoff_s) {
  const double deadline =
      wait_timeout_s > 0 ? steady_now() + wait_timeout_s : 0.0;
  UdsStream stream = connect_with_backoff(socket_path, retries, backoff_s);
  if (!stream.valid()) {
    XP_ERROR("cannot connect to %s (is xplace_serve running?)",
             socket_path.c_str());
    return 1;
  }
  while (true) {
    Request r = req;
    if (deadline > 0) {
      const double remaining = deadline - steady_now();
      if (remaining <= 0) {
        std::fprintf(stderr,
                     "%s: id %llu not terminal within %.1fs wait bound\n",
                     to_string(req.cmd),
                     static_cast<unsigned long long>(req.id), wait_timeout_s);
        return 3;
      }
      r.timeout_s = std::min(r.timeout_s, remaining);
    }
    std::string line;
    bool oversized = false;
    if (!stream.write_line(build_request(r)) ||
        !stream.read_line(&line, &oversized)) {
      stream = connect_with_backoff(socket_path, retries, backoff_s);
      if (!stream.valid()) {
        XP_ERROR("daemon did not come back on %s", socket_path.c_str());
        return 1;
      }
      continue;
    }
    if (oversized) continue;
    json::Value v;
    std::string error;
    if (!json::parse(line, &v, &error) || !v.is_object() ||
        !v.get_bool("ok", false)) {
      std::printf("%s\n", line.c_str());
      return 1;  // unknown/evicted id, or a malformed daemon reply
    }
    if (response_settled(req.cmd, v)) {
      std::printf("%s\n", line.c_str());
      return 0;
    }
    // Not terminal yet (the server-side wait timed out): keep waiting until
    // the overall bound says stop.
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.positional().empty()) return usage();

  const std::string verb = args.positional()[0];
  const long connect_retries = args.get_int("connect-retries", 5);
  const double connect_backoff_s = args.get_double("connect-backoff-s", 0.2);
  if (verb == "watch") {
    const std::string socket_path = args.get("socket", "/tmp/xplace.sock");
    UdsStream stream =
        connect_with_backoff(socket_path, connect_retries, connect_backoff_s);
    if (!stream.valid()) {
      XP_ERROR("cannot connect to %s (is xplace_serve running?)",
               socket_path.c_str());
      return 1;
    }
    return run_watch(stream, socket_path, args.get_double("interval-s", 2.0),
                     args.get_int("count", 0),
                     !args.get_bool("no-clear", false));
  }

  Request req;
  if (!command_from_name(verb, &req.cmd)) return usage();
  req.id = static_cast<std::uint64_t>(args.get_int("id", 0));
  req.from_seq = static_cast<std::uint64_t>(args.get_int("from", 0));
  req.wait = args.get_bool("wait", false);
  req.timeout_s = args.get_double(
      "timeout-s", args.get_bool("follow", false) ? 3600.0 : 60.0);
  req.drain = !args.get_bool("no-drain", false);
  if (req.cmd == Command::kSubmit || req.cmd == Command::kUploadDesign ||
      req.cmd == Command::kSubmitBatch ||
      req.cmd == Command::kSubmitPortfolio) {
    JobSpec& s = req.spec;
    s.aux = args.get("aux");
    s.demo_cells = args.get_int("demo-cells", 0);
    s.demo_seed = static_cast<std::uint64_t>(args.get_int("demo-seed", 11));
    const std::string design_hex = args.get("design");
    if (!design_hex.empty() && !hex_to_hash(design_hex, &s.design_hash)) {
      std::fprintf(stderr, "--design must be a 64-bit hex content hash\n");
      return 2;
    }
    s.max_iters = static_cast<int>(args.get_int("max-iters", 1500));
    s.grid = static_cast<int>(args.get_int("grid", 128));
    s.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
    s.target_density = args.get_double("target-density", 0.0);
    s.lambda_init = args.get_double("lambda-init", 0.0);
    s.threads = static_cast<int>(args.get_int("threads", 0));
    s.full_flow = !args.get_bool("gp-only", false);
    s.priority = static_cast<int>(args.get_int("priority", 0));
    s.deadline_s = args.get_double("deadline-s", 0.0);
    s.label = args.get("label");
    s.dedup = req.cmd == Command::kSubmitBatch
                  ? !args.get_bool("no-dedup", false)
                  : args.get_bool("dedup", false);
    if (s.aux.empty() && s.demo_cells <= 0 && s.design_hash == 0) {
      std::fprintf(stderr,
                   "%s needs --aux PATH, --demo-cells N%s\n", verb.c_str(),
                   req.cmd == Command::kUploadDesign ? ""
                                                    : ", or --design HASH");
      return 2;
    }
  }
  if (req.cmd == Command::kEvictDesign) {
    const std::string design_hex = args.get("design");
    if (design_hex.empty() ||
        !hex_to_hash(design_hex, &req.spec.design_hash)) {
      std::fprintf(stderr, "evict needs --design HASH (64-bit hex)\n");
      return 2;
    }
  }
  if (req.cmd == Command::kSubmitBatch) {
    // One config per sweep-axis entry, each starting from the base flags.
    for (const std::string& v : split_list(args.get("seeds"))) {
      JobSpec c = req.spec;
      c.seed = static_cast<std::uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
      req.configs.push_back(std::move(c));
    }
    for (const std::string& v : split_list(args.get("densities"))) {
      JobSpec c = req.spec;
      c.target_density = std::strtod(v.c_str(), nullptr);
      req.configs.push_back(std::move(c));
    }
    for (const std::string& v : split_list(args.get("lambdas"))) {
      JobSpec c = req.spec;
      c.lambda_init = std::strtod(v.c_str(), nullptr);
      req.configs.push_back(std::move(c));
    }
    if (req.configs.empty()) {
      std::fprintf(stderr,
                   "sweep needs at least one axis: --seeds, --densities, "
                   "or --lambdas (comma lists)\n");
      return 2;
    }
  }
  if (req.cmd == Command::kSubmitPortfolio) {
    req.k = static_cast<int>(args.get_int("k", 0));
    if (req.k < 2) {
      std::fprintf(stderr, "portfolio needs --k N (members, >= 2)\n");
      return 2;
    }
    req.kill_min_iter = static_cast<int>(args.get_int("kill-min-iter", -1));
    req.kill_margin = args.get_double("kill-margin", 0.0);
    if (args.has("kill-slack")) {
      req.kill_slack = args.get_double("kill-slack", 0.0);
    }
    req.no_kill = args.get_bool("no-kill", false);
  }

  const std::string socket_path = args.get("socket", "/tmp/xplace.sock");
  if (req.cmd == Command::kEvents) {
    return run_events(req, socket_path, args.get_bool("follow", false),
                      connect_retries, connect_backoff_s);
  }
  const double wait_timeout_s = args.get_double("wait-timeout-s", 0.0);
  if ((req.cmd == Command::kResult || req.cmd == Command::kBatchResult ||
       req.cmd == Command::kPortfolioResult) &&
      req.wait && wait_timeout_s > 0) {
    return run_bounded_wait(req, socket_path, wait_timeout_s, connect_retries,
                            connect_backoff_s);
  }
  UdsStream stream =
      connect_with_backoff(socket_path, connect_retries, connect_backoff_s);
  if (!stream.valid()) {
    XP_ERROR("cannot connect to %s (is xplace_serve running?)",
             socket_path.c_str());
    return 1;
  }
  if (req.cmd == Command::kMetrics) {
    // Decode the exposition text out of the JSON envelope so the output is
    // directly consumable by Prometheus-style tooling.
    stream.set_max_line(kMetricsLineCap);
    json::Value resp;
    if (!round_trip(stream, req, &resp)) {
      XP_ERROR("metrics request failed");
      return 1;
    }
    std::fputs(resp.get_string("metrics").c_str(), stdout);
    return 0;
  }
  if (!stream.write_line(build_request(req))) {
    XP_ERROR("write failed");
    return 1;
  }

  // One response line per command; `events` streams event lines first and
  // closes with the final ok line.
  std::string line;
  bool oversized = false;
  bool ok = false;
  while (stream.read_line(&line, &oversized)) {
    if (oversized) continue;
    std::printf("%s\n", line.c_str());
    if (is_final_response(line, &ok)) return ok ? 0 : 1;
  }
  XP_ERROR("connection closed before a response arrived");
  return 1;
}
