#include <gtest/gtest.h>

#include <cmath>

#include "core/placer.h"
#include "dp/detailed_placer.h"
#include "dp/global_swap.h"
#include "dp/hpwl_eval.h"
#include "dp/hungarian.h"
#include "dp/ism.h"
#include "dp/local_reorder.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "lg/checker.h"
#include "lg/row_map.h"
#include "lg/tetris.h"
#include "util/rng.h"

namespace xplace {
namespace {

db::Database placed_design(std::size_t cells = 800, std::uint64_t seed = 3) {
  io::GeneratorSpec spec;
  spec.name = "lg_unit";
  spec.num_cells = cells;
  spec.num_nets = cells + 40;
  spec.num_macros = 3;
  spec.num_io_pads = 12;
  spec.seed = seed;
  db::Database db = io::generate(spec);
  core::PlacerConfig cfg;
  cfg.grid_dim = 64;
  cfg.max_iters = 600;
  core::GlobalPlacer placer(db, cfg);
  placer.run();
  return db;
}

// ---------------- RowMap ----------------

TEST(RowMap, SegmentsExcludeMacros) {
  db::Database db = placed_design(300, 7);
  lg::RowMap rows(db);
  EXPECT_GT(rows.num_rows(), 4u);
  // Every segment must be macro-free.
  for (std::size_t f = db.num_movable(); f < db.num_physical(); ++f) {
    const RectD m = db.cell_rect(f);
    if (m.area() < 4.0) continue;  // pads
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
      const double ry = rows.row_y(r);
      if (m.ly >= ry + rows.row_height() - 1e-9 || m.hy <= ry + 1e-9) continue;
      for (const lg::Segment& s : rows.segments(r)) {
        EXPECT_TRUE(s.hx <= m.lx + 1e-6 || s.lx >= m.hx - 1e-6)
            << "segment [" << s.lx << "," << s.hx << ") intersects macro";
      }
    }
  }
}

TEST(RowMap, NearestRowRoundTrips) {
  db::Database db = placed_design(300, 7);
  lg::RowMap rows(db);
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    const double cy = rows.row_y(r) + rows.row_height() * 0.5;
    EXPECT_EQ(rows.nearest_row(cy), r);
  }
  EXPECT_EQ(rows.nearest_row(-1e9), 0u);
  EXPECT_EQ(rows.nearest_row(1e9), rows.num_rows() - 1);
}

// ---------------- legalizers ----------------

TEST(Tetris, ProducesLegalPlacement) {
  db::Database db = placed_design();
  const lg::LegalizeStats stats = lg::tetris_legalize(db);
  EXPECT_EQ(stats.failed_cells, 0u);
  const lg::LegalityReport rep = lg::check_legality(db);
  EXPECT_TRUE(rep.legal()) << rep.summary()
                           << (rep.samples.empty() ? "" : "\n" + rep.samples[0]);
}

TEST(Abacus, ProducesLegalPlacement) {
  db::Database db = placed_design();
  const lg::LegalizeStats stats = lg::abacus_legalize(db);
  EXPECT_EQ(stats.failed_cells, 0u);
  const lg::LegalityReport rep = lg::check_legality(db);
  EXPECT_TRUE(rep.legal()) << rep.summary()
                           << (rep.samples.empty() ? "" : "\n" + rep.samples[0]);
}

TEST(Abacus, MovesLessThanTetris) {
  db::Database db1 = placed_design(800, 13);
  db::Database db2 = placed_design(800, 13);
  const lg::LegalizeStats t = lg::tetris_legalize(db1);
  const lg::LegalizeStats a = lg::abacus_legalize(db2);
  EXPECT_LT(a.avg_displacement, t.avg_displacement * 1.05)
      << "abacus " << a.avg_displacement << " vs tetris " << t.avg_displacement;
  // Abacus should also not be dramatically worse on HPWL.
  EXPECT_LT(a.hpwl_after, t.hpwl_after * 1.10);
}

TEST(Legalizers, HpwlChangeIsModest) {
  db::Database db = placed_design();
  const double before = db.hpwl();
  lg::abacus_legalize(db);
  EXPECT_LT(db.hpwl(), before * 1.30) << "legalization should not destroy GP";
}

TEST(Checker, DetectsOverlap) {
  db::Database db = placed_design(200, 17);
  lg::abacus_legalize(db);
  ASSERT_TRUE(lg::check_legality(db).legal());
  // Introduce a deliberate overlap.
  db.set_position(1, db.x(0), db.y(0));
  const lg::LegalityReport rep = lg::check_legality(db);
  EXPECT_FALSE(rep.legal());
  EXPECT_GT(rep.overlaps, 0u);
}

TEST(Checker, DetectsOffRowAndOffSite) {
  db::Database db = placed_design(200, 17);
  lg::abacus_legalize(db);
  db.set_position(0, db.x(0) + 0.37, db.y(0));  // off-site
  db.set_position(2, db.x(2), db.y(2) + 3.21);  // off-row
  const lg::LegalityReport rep = lg::check_legality(db);
  EXPECT_GT(rep.off_site + rep.overlaps, 0u);
  EXPECT_GT(rep.out_of_row, 0u);
}

// ---------------- Hungarian ----------------

TEST(Hungarian, SolvesKnownInstance) {
  // cost rows: worker i → job j.
  const std::vector<double> cost = {4, 1, 3,
                                    2, 0, 5,
                                    3, 2, 2};
  const auto a = dp::hungarian(cost, 3);
  EXPECT_DOUBLE_EQ(dp::assignment_cost(cost, 3, a), 5.0);  // 1 + 2 + 2
}

TEST(Hungarian, IdentityWhenDiagonalIsBest) {
  std::vector<double> cost(16, 10.0);
  for (int i = 0; i < 4; ++i) cost[i * 4 + i] = 0.0;
  const auto a = dp::hungarian(cost, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a[i], i);
}

TEST(Hungarian, MatchesBruteForceOnRandomInstances) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + trial % 5;  // up to 6
    std::vector<double> cost(static_cast<std::size_t>(n) * n);
    for (auto& c : cost) c = rng.uniform(0.0, 10.0);
    const auto a = dp::hungarian(cost, n);
    // Assignment is a permutation.
    std::vector<char> used(n, 0);
    for (int i = 0; i < n; ++i) {
      ASSERT_GE(a[i], 0);
      ASSERT_LT(a[i], n);
      ASSERT_FALSE(used[a[i]]);
      used[a[i]] = 1;
    }
    // Brute force optimum.
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    double best = 1e300;
    do {
      best = std::min(best, dp::assignment_cost(cost, n, perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(dp::assignment_cost(cost, n, a), best, 1e-9) << "n=" << n;
  }
}

// ---------------- DP passes ----------------

TEST(HpwlEval, MatchesFullRecomputation) {
  db::Database db = placed_design(300, 19);
  dp::HpwlEval eval(db);
  // Moving one cell: delta via eval must match full HPWL delta.
  const std::uint32_t cell = 5;
  const double before_nets = eval.cell_net_hpwl(cell);
  const double before_full = db.hpwl();
  db.set_position(cell, db.x(cell) + 7.0, db.y(cell));
  const double after_nets = eval.cell_net_hpwl(cell);
  const double after_full = db.hpwl();
  EXPECT_NEAR(after_nets - before_nets, after_full - before_full,
              1e-6 * before_full);
}

TEST(HpwlEval, DeduplicatesSharedNets) {
  db::Database db = placed_design(300, 19);
  dp::HpwlEval eval(db);
  // Two cells on one net must count that net once.
  std::uint32_t a = 0, b = 0;
  bool found = false;
  for (std::size_t e = 0; e < db.num_nets() && !found; ++e) {
    if (db.net_degree(e) >= 2) {
      const auto p0 = db.net_pin_start(e);
      a = db.pin_cell(p0);
      b = db.pin_cell(p0 + 1);
      if (a != b && db.is_movable(a) && db.is_movable(b)) found = true;
    }
  }
  ASSERT_TRUE(found);
  std::uint32_t pair[2] = {a, b};
  const auto& nets = eval.collect_nets(pair, 2);
  std::set<std::uint32_t> unique(nets.begin(), nets.end());
  EXPECT_EQ(unique.size(), nets.size());
}

TEST(DetailedPlace, PassesNeverIncreaseHpwlAndStayLegal) {
  db::Database db = placed_design();
  lg::abacus_legalize(db);
  ASSERT_TRUE(lg::check_legality(db).legal());

  const double h0 = db.hpwl();
  const dp::PassStats swap = dp::global_swap_pass(db, 6 * 12.0);
  EXPECT_LE(swap.hpwl_after, swap.hpwl_before + 1e-6);
  EXPECT_TRUE(lg::check_legality(db).legal()) << "after global swap";

  const dp::PassStats ism = dp::ism_pass(db);
  EXPECT_LE(ism.hpwl_after, ism.hpwl_before + 1e-6);
  EXPECT_TRUE(lg::check_legality(db).legal()) << "after ISM";

  const dp::PassStats reorder = dp::local_reorder_pass(db, 3);
  EXPECT_LE(reorder.hpwl_after, reorder.hpwl_before + 1e-6);
  EXPECT_TRUE(lg::check_legality(db).legal()) << "after local reorder";

  EXPECT_LT(db.hpwl(), h0);  // the combination should find improvements
}

TEST(DetailedPlace, DriverImprovesHpwl) {
  db::Database db = placed_design();
  lg::abacus_legalize(db);
  const dp::DetailedPlaceResult res = dp::detailed_place(db);
  EXPECT_LT(res.hpwl_after, res.hpwl_before);
  EXPECT_GT(res.moves_accepted, 0u);
  EXPECT_TRUE(lg::check_legality(db).legal());
}

TEST(DetailedPlace, NoMovesOnConvergedResult) {
  db::Database db = placed_design(200, 23);
  lg::abacus_legalize(db);
  dp::detailed_place(db);
  // A second run should find almost nothing.
  const double h1 = db.hpwl();
  const dp::DetailedPlaceResult res2 = dp::detailed_place(db);
  EXPECT_LT(h1 - res2.hpwl_after, 0.01 * h1);
}

}  // namespace
}  // namespace xplace
