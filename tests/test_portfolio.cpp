// Portfolio-runner subsystem tests (DESIGN.md §16): deterministic plan
// generation, the laggard-racing policy in isolation, end-to-end K-way
// portfolios on an in-process PlacementServer (winner determinism, early
// kill), crash-restart recovery from a fabricated journal, batch-cancel,
// the hill-climb kick's never-worse guarantee, and the protocol/codec
// round-trips for the new verbs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/placer.h"
#include "io/generator.h"
#include "io/journal.h"
#include "opt/portfolio.h"
#include "server/protocol.h"
#include "server/recovery.h"
#include "server/server.h"

namespace xplace::server {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("xplace_portfolio_" + tag + "_" +
                  std::to_string(static_cast<unsigned>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Plan generation (src/opt/portfolio.*)
// ---------------------------------------------------------------------------

TEST(PortfolioPlan, DeterministicFromKAndSeed) {
  const auto a = opt::make_portfolio_plan(5, 7);
  const auto b = opt::make_portfolio_plan(5, 7);
  ASSERT_EQ(a.size(), 5u);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed) << i;
    EXPECT_EQ(a[i].init_noise_scale, b[i].init_noise_scale) << i;  // bitwise
    EXPECT_EQ(a[i].gamma_scale, b[i].gamma_scale) << i;
    EXPECT_EQ(a[i].lambda_scale, b[i].lambda_scale) << i;
    EXPECT_EQ(a[i].label, b[i].label) << i;
  }
}

TEST(PortfolioPlan, VariantZeroIsUnperturbedBaseline) {
  const auto plan = opt::make_portfolio_plan(4, 9);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].seed, 9u);
  EXPECT_EQ(plan[0].init_noise_scale, 1.0);
  EXPECT_EQ(plan[0].gamma_scale, 1.0);
  EXPECT_EQ(plan[0].lambda_scale, 1.0);
  EXPECT_EQ(plan[0].label, "v0");
  // Challengers: distinct seeds, perturbations inside the documented ranges.
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_NE(plan[i].seed, plan[0].seed) << i;
    for (std::size_t j = 1; j < i; ++j) EXPECT_NE(plan[i].seed, plan[j].seed);
    EXPECT_GE(plan[i].init_noise_scale, 0.5) << i;
    EXPECT_LE(plan[i].init_noise_scale, 8.0) << i;
    EXPECT_GE(plan[i].gamma_scale, 0.7) << i;
    EXPECT_LE(plan[i].gamma_scale, 1.4) << i;
    EXPECT_GE(plan[i].lambda_scale, 0.5) << i;
    EXPECT_LE(plan[i].lambda_scale, 2.0) << i;
  }
}

TEST(PortfolioPlan, DifferentSeedsGiveDifferentPlans) {
  const auto a = opt::make_portfolio_plan(4, 1);
  const auto b = opt::make_portfolio_plan(4, 2);
  bool any_diff = false;
  for (std::size_t i = 1; i < 4; ++i) {
    if (a[i].init_noise_scale != b[i].init_noise_scale ||
        a[i].gamma_scale != b[i].gamma_scale) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(PortfolioPlan, ApplyVariantScalesConfigKnobs) {
  core::PlacerConfig base;
  opt::PerturbationVariant v;
  v.seed = 42;
  v.init_noise_scale = 2.0;
  v.gamma_scale = 0.5;
  v.lambda_scale = 4.0;
  const core::PlacerConfig out = opt::apply_variant(base, v);
  EXPECT_EQ(out.seed, 42u);
  EXPECT_DOUBLE_EQ(out.center_init_noise, base.center_init_noise * 2.0);
  EXPECT_DOUBLE_EQ(out.gamma_base_factor, base.gamma_base_factor * 0.5);
  EXPECT_DOUBLE_EQ(out.lambda_init_factor, base.lambda_init_factor * 4.0);
}

// ---------------------------------------------------------------------------
// Racing policy (src/server/portfolio_racer.*)
// ---------------------------------------------------------------------------

MemberProgress member(std::uint64_t id, int iter, double hpwl,
                      double overflow) {
  MemberProgress m;
  m.id = id;
  m.has_progress = true;
  m.iter = iter;
  m.hpwl = hpwl;
  m.overflow = overflow;
  return m;
}

TEST(PortfolioRacer, KillsStrictLaggardOnly) {
  RacePolicy p;
  p.min_iter = 10;
  // Leader: id 1. Member 2 is behind on BOTH metrics -> laggard. Member 3 is
  // behind on HPWL but ahead on overflow -> spared (not a *strict* laggard).
  const std::vector<MemberProgress> ms = {
      member(1, 50, 100.0, 0.30),
      member(2, 50, 100.0 * 1.20, 0.30 + 0.10),
      member(3, 50, 100.0 * 1.20, 0.10),
  };
  const auto kills = laggards_to_kill(ms, p);
  ASSERT_EQ(kills.size(), 1u);
  EXPECT_EQ(kills[0], 2u);
}

TEST(PortfolioRacer, LeaderNeverKilledAndGraceRespected) {
  RacePolicy p;
  p.min_iter = 100;
  // Worse member is still inside its grace window -> nobody dies.
  const std::vector<MemberProgress> ms = {
      member(1, 150, 100.0, 0.20),
      member(2, 50, 500.0, 0.90),
  };
  EXPECT_TRUE(laggards_to_kill(ms, p).empty());
}

TEST(PortfolioRacer, MinSurvivorsFloorHolds) {
  RacePolicy p;
  p.min_iter = 1;
  p.min_survivors = 2;
  const std::vector<MemberProgress> ms = {
      member(1, 50, 100.0, 0.10),
      member(2, 50, 400.0, 0.90),
      member(3, 50, 300.0, 0.80),
  };
  // Both 2 and 3 qualify as laggards; the floor keeps one of them alive and
  // the worst (highest HPWL) dies first.
  const auto kills = laggards_to_kill(ms, p);
  ASSERT_EQ(kills.size(), 1u);
  EXPECT_EQ(kills[0], 2u);
}

TEST(PortfolioRacer, NoProgressAndTerminalMembersSpared) {
  RacePolicy p;
  p.min_iter = 1;
  MemberProgress queued;  // no events yet: still queued
  queued.id = 4;
  MemberProgress done = member(5, 90, 900.0, 0.95);
  done.terminal = true;
  const std::vector<MemberProgress> ms = {
      member(1, 50, 100.0, 0.10), queued, done};
  EXPECT_TRUE(laggards_to_kill(ms, p).empty());
}

TEST(PortfolioRacer, NoKillDisablesRacing) {
  RacePolicy p;
  p.min_iter = 1;
  p.no_kill = true;
  const std::vector<MemberProgress> ms = {
      member(1, 50, 100.0, 0.10),
      member(2, 50, 900.0, 0.95),
  };
  EXPECT_TRUE(laggards_to_kill(ms, p).empty());
}

// ---------------------------------------------------------------------------
// End-to-end portfolios on an in-process server
// ---------------------------------------------------------------------------

JobSpec portfolio_base(std::uint64_t design, int iters = 40) {
  JobSpec base;
  base.design_hash = design;
  base.max_iters = iters;
  base.grid = 32;
  base.seed = 1;
  base.full_flow = false;
  return base;
}

TEST(ServerPortfolio, DeterministicWinnerAcrossServers) {
  auto run_once = [](std::uint64_t* winner, double* winner_hpwl,
                     std::size_t* parses) {
    ServerConfig cfg;
    cfg.max_concurrency = 2;
    cfg.portfolio_poll_s = -1.0;  // racer disabled: pure race-free baseline
    PlacementServer srv(cfg);
    JobSpec src;
    src.demo_cells = 200;
    src.demo_seed = 3;
    const auto up = srv.upload_design(src);
    ASSERT_TRUE(up.ok) << up.error;
    RacePolicy no_kill;
    no_kill.no_kill = true;
    const auto out =
        srv.submit_portfolio(portfolio_base(up.hash), 3, 0.0, no_kill);
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_EQ(out.jobs.size(), 3u);
    const auto st = srv.portfolio_wait(out.portfolio_id, 300.0);
    ASSERT_TRUE(st.has_value());
    ASSERT_TRUE(st->all_terminal);
    EXPECT_EQ(st->done, 3u);
    ASSERT_NE(st->winner, 0u);
    *winner = st->winner;
    *winner_hpwl = st->winner_hpwl;
    *parses = srv.stats().design_parses;
    // The winner is the min-HPWL done member, and never worse than the
    // unperturbed baseline (member v0 = jobs[0]).
    const auto v0 = srv.status(out.jobs[0].id);
    ASSERT_TRUE(v0.has_value());
    EXPECT_LE(st->winner_hpwl, v0->hpwl);
    srv.shutdown(/*drain=*/false);
  };
  std::uint64_t w1 = 0, w2 = 0;
  double h1 = 0.0, h2 = 0.0;
  std::size_t p1 = 0, p2 = 0;
  run_once(&w1, &h1, &p1);
  run_once(&w2, &h2, &p2);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(h1, h2);  // bitwise
  // One parse served each whole portfolio.
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(p2, 1u);
}

TEST(ServerPortfolio, VariantsAreDistinctUnderDedup) {
  // Two portfolios of the same (design, k, seed) dedup member-for-member;
  // the perturbation scales keep the K members themselves distinct configs.
  ServerConfig cfg;
  cfg.max_concurrency = 2;
  cfg.portfolio_poll_s = -1.0;
  PlacementServer srv(cfg);
  JobSpec src;
  src.demo_cells = 160;
  src.demo_seed = 4;
  const auto up = srv.upload_design(src);
  ASSERT_TRUE(up.ok) << up.error;
  RacePolicy no_kill;
  no_kill.no_kill = true;
  const auto a =
      srv.submit_portfolio(portfolio_base(up.hash, 25), 3, 0.0, no_kill);
  ASSERT_TRUE(a.ok) << a.error;
  // K distinct member jobs (no intra-portfolio dedup).
  EXPECT_NE(a.jobs[0].id, a.jobs[1].id);
  EXPECT_NE(a.jobs[1].id, a.jobs[2].id);
  ASSERT_TRUE(srv.portfolio_wait(a.portfolio_id, 300.0)->all_terminal);

  const auto b =
      srv.submit_portfolio(portfolio_base(up.hash, 25), 3, 0.0, no_kill);
  ASSERT_TRUE(b.ok) << b.error;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(b.jobs[i].deduped) << i;
    EXPECT_EQ(b.jobs[i].id, a.jobs[i].id) << i;
  }
  EXPECT_EQ(srv.stats().design_parses, 1u);
  srv.shutdown(/*drain=*/false);
}

TEST(ServerPortfolio, EarlyKillCommitsLosersBestSnapshot) {
  // Aggressive policy: any member strictly behind the leader's HPWL dies as
  // soon as it clears a 3-iteration grace window. Long max_iters guarantee
  // the members are still mid-flight when the racer first samples.
  ServerConfig cfg;
  cfg.max_concurrency = 2;
  cfg.portfolio_poll_s = 0.02;
  PlacementServer srv(cfg);
  JobSpec src;
  src.demo_cells = 1200;
  src.demo_seed = 3;
  const auto up = srv.upload_design(src);
  ASSERT_TRUE(up.ok) << up.error;
  RacePolicy aggressive;
  aggressive.min_iter = 3;
  aggressive.hpwl_margin = 1.0;       // strictly worse HPWL qualifies...
  aggressive.overflow_slack = -10.0;  // ...and overflow never saves you
  aggressive.min_survivors = 1;
  const auto out =
      srv.submit_portfolio(portfolio_base(up.hash, 4000), 2, 0.0, aggressive);
  ASSERT_TRUE(out.ok) << out.error;
  const auto st = srv.portfolio_wait(out.portfolio_id, 300.0);
  ASSERT_TRUE(st.has_value());
  ASSERT_TRUE(st->all_terminal);
  ASSERT_GE(st->killed, 1u);
  EXPECT_EQ(st->cancelled, st->killed);
  EXPECT_GE(srv.stats().portfolio_kills, 1u);
  // The killed member landed kCancelled with its committed best snapshot:
  // real iterations, real HPWL (not an empty record).
  std::size_t cancelled_seen = 0;
  for (const auto& ref : out.jobs) {
    const auto rec = srv.status(ref.id);
    ASSERT_TRUE(rec.has_value());
    if (rec->state == JobState::kCancelled) {
      ++cancelled_seen;
      EXPECT_GT(rec->iterations, 0);
      EXPECT_GT(rec->hpwl, 0.0);
    }
  }
  EXPECT_EQ(cancelled_seen, st->killed);
  // The winner survived and finished.
  ASSERT_NE(st->winner, 0u);
  const auto win = srv.status(st->winner);
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(win->state, JobState::kDone);
  srv.shutdown(/*drain=*/false);
}

TEST(ServerPortfolio, SubmitValidation) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  JobSpec src;
  src.demo_cells = 120;
  src.demo_seed = 2;
  const auto up = srv.upload_design(src);
  ASSERT_TRUE(up.ok) << up.error;
  EXPECT_FALSE(srv.submit_portfolio(portfolio_base(up.hash), 1, 0.0).ok);
  EXPECT_FALSE(srv.submit_portfolio(portfolio_base(up.hash), 65, 0.0).ok);
  EXPECT_FALSE(srv.submit_portfolio(portfolio_base(up.hash), 4, -1.0).ok);
  EXPECT_FALSE(srv.portfolio_status(99).has_value());
  srv.shutdown(/*drain=*/false);
}

// ---------------------------------------------------------------------------
// batch-cancel
// ---------------------------------------------------------------------------

TEST(ServerBatchCancel, CancelsEveryNonTerminalMember) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  JobSpec src;
  src.demo_cells = 1200;
  src.demo_seed = 3;
  const auto up = srv.upload_design(src);
  ASSERT_TRUE(up.ok) << up.error;

  JobSpec base;
  base.design_hash = up.hash;
  std::vector<JobSpec> configs;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    JobSpec c = portfolio_base(up.hash, 4000);
    c.seed = s;
    c.dedup = true;
    configs.push_back(c);
  }
  const auto batch = srv.submit_batch(base, configs);
  ASSERT_TRUE(batch.ok) << batch.error;

  std::size_t cancelled = 0;
  std::string err;
  ASSERT_TRUE(srv.batch_cancel(batch.batch_id, &cancelled, &err)) << err;
  EXPECT_GE(cancelled, 2u);  // the running member may already be terminal
  const auto st = srv.batch_wait(batch.batch_id, 120.0);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->all_terminal);
  // Cancelling again is a no-op that still succeeds (0 members acted on).
  ASSERT_TRUE(srv.batch_cancel(batch.batch_id, &cancelled, &err)) << err;
  EXPECT_EQ(cancelled, 0u);
  // Unknown ids fail loudly.
  EXPECT_FALSE(srv.batch_cancel(999, &cancelled, &err));
  srv.shutdown(/*drain=*/false);
}

// ---------------------------------------------------------------------------
// Crash-restart recovery
// ---------------------------------------------------------------------------

TEST(PortfolioRecovery, CodecRoundTrip) {
  PortfolioInfo info;
  info.batch_id = 7;
  info.design_hash = 0xdeadbeefcafef00dULL;
  info.base_seed = 11;
  info.k = 4;
  info.deadline_s = 120.5;
  info.label = "night_sweep";
  info.min_iter = 25;
  info.hpwl_margin = 1.08;
  info.overflow_slack = -0.02;
  info.no_kill = 1;
  PortfolioInfo out;
  ASSERT_TRUE(decode_portfolio(encode_portfolio(info), &out));
  EXPECT_EQ(out.batch_id, info.batch_id);
  EXPECT_EQ(out.design_hash, info.design_hash);
  EXPECT_EQ(out.base_seed, info.base_seed);
  EXPECT_EQ(out.k, info.k);
  EXPECT_EQ(out.deadline_s, info.deadline_s);
  EXPECT_EQ(out.label, info.label);
  EXPECT_EQ(out.min_iter, info.min_iter);
  EXPECT_EQ(out.hpwl_margin, info.hpwl_margin);
  EXPECT_EQ(out.overflow_slack, info.overflow_slack);
  EXPECT_EQ(out.no_kill, info.no_kill);
  EXPECT_FALSE(decode_portfolio("short", &out));
}

TEST(PortfolioRecovery, CrashMidPortfolioRecoversAndSettles) {
  const fs::path state = fresh_dir("crash");
  const std::uint64_t dhash = io::demo_content_hash(130, 5);

  // Fabricate the journal a daemon killed mid-portfolio would leave: design
  // ref, member 1 finished, member 2 still queued, the batch + portfolio
  // records — and no clean-shutdown marker.
  {
    io::JournalWriter w;
    ASSERT_TRUE(w.open((state / "journal.xpjl").string(), /*truncate=*/true));
    const auto rec = [](JournalEvent type, std::uint64_t id,
                        std::string payload) {
      io::JournalRecord r;
      r.type = static_cast<std::uint32_t>(type);
      r.job_id = id;
      r.time_s = 0.0;
      r.payload = std::move(payload);
      return r;
    };
    DesignRefInfo ref;
    ref.demo = true;
    ref.cells = 130;
    ref.seed = 5;
    ASSERT_TRUE(w.append(rec(JournalEvent::kDesignRef, dhash,
                             encode_design_ref(ref))));
    JobSpec m1 = portfolio_base(dhash, 25);
    m1.batch_id = 1;
    m1.portfolio_id = 1;
    m1.dedup = true;
    ASSERT_TRUE(w.append(rec(JournalEvent::kSubmit, 1, encode_submit(m1, 0))));
    ASSERT_TRUE(w.append(rec(JournalEvent::kStart, 1, {})));
    FinishInfo fin;
    fin.state = JobState::kDone;
    fin.hpwl = 42.5;
    fin.iterations = 25;
    ASSERT_TRUE(w.append(rec(JournalEvent::kFinish, 1, encode_finish(fin))));
    JobSpec m2 = m1;
    m2.seed = 2;
    m2.gamma_scale = 1.1;
    ASSERT_TRUE(w.append(rec(JournalEvent::kSubmit, 2, encode_submit(m2, 0))));
    BatchInfo batch;
    batch.design_hash = dhash;
    batch.label = "p1";
    batch.job_ids = {1, 2};
    batch.deduped = {0, 0};
    ASSERT_TRUE(w.append(rec(JournalEvent::kBatch, 1, encode_batch(batch))));
    PortfolioInfo pf;
    pf.batch_id = 1;
    pf.design_hash = dhash;
    pf.base_seed = 1;
    pf.k = 2;
    pf.label = "p1";
    pf.no_kill = 1;
    ASSERT_TRUE(w.append(rec(JournalEvent::kPortfolio, 1,
                             encode_portfolio(pf))));
  }

  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.state_dir = state.string();
  PlacementServer srv(cfg);

  // The portfolio aggregate survived the crash...
  const auto st0 = srv.portfolio_status(1);
  ASSERT_TRUE(st0.has_value());
  EXPECT_EQ(st0->batch_id, 1u);
  EXPECT_EQ(st0->design_hash, dhash);
  EXPECT_EQ(st0->base_seed, 1u);
  ASSERT_EQ(st0->jobs.size(), 2u);

  // ...and settles: member 1 replays as done, member 2 re-runs to terminal.
  const auto st = srv.portfolio_wait(1, 300.0);
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->all_terminal);
  EXPECT_EQ(st->done, 2u);
  ASSERT_NE(st->winner, 0u);
  EXPECT_GT(st->winner_hpwl, 0.0);

  // Ids keep advancing past the recovered portfolio.
  JobSpec src;
  src.demo_cells = 130;
  src.demo_seed = 5;
  const auto out = srv.submit_portfolio(portfolio_base(dhash, 25), 2, 0.0);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.portfolio_id, 2u);

  srv.shutdown(/*drain=*/true);
  fs::remove_all(state);
}

// ---------------------------------------------------------------------------
// First-class seed + hill-climb kick (core level)
// ---------------------------------------------------------------------------

db::Database kick_design(std::size_t cells = 400, std::uint64_t seed = 5) {
  io::GeneratorSpec spec;
  spec.name = "portfolio_unit";
  spec.num_cells = cells;
  spec.num_nets = cells + cells / 20;
  spec.num_macros = 2;
  spec.num_io_pads = 12;
  spec.seed = seed;
  return io::generate(spec);
}

TEST(PlacerSeed, FirstClassSeedMatchesExplicitStreams) {
  core::PlacerConfig a;
  a.grid_dim = 32;
  a.max_iters = 50;
  a.stop_overflow = 0.0;
  a.seed = 5;
  core::PlacerConfig b = a;
  b.seed = 0;
  b.filler_seed = 5;
  b.init_noise_seed = 6;

  db::Database db1 = kick_design();
  core::GlobalPlacer p1(db1, a);
  const auto r1 = p1.run();
  db::Database db2 = kick_design();
  core::GlobalPlacer p2(db2, b);
  const auto r2 = p2.run();
  EXPECT_EQ(r1.hpwl, r2.hpwl);  // bitwise
  EXPECT_EQ(r1.iterations, r2.iterations);
}

TEST(PlacerKick, KickedRunNeverWorseAndDeterministic) {
  core::PlacerConfig base;
  base.grid_dim = 32;
  base.max_iters = 600;
  base.seed = 7;
  db::Database db0 = kick_design();
  core::GlobalPlacer p0(db0, base);
  const auto r0 = p0.run();

  core::PlacerConfig kicked = base;
  kicked.kicks = 2;
  kicked.kick_iters = 60;
  db::Database db1 = kick_design();
  core::GlobalPlacer p1(db1, kicked);
  const auto r1 = p1.run();
  EXPECT_EQ(r1.kicks_attempted, 2);
  EXPECT_GE(r1.kicks_accepted, 0);
  // Accept-if-better: the committed solution never regresses past the
  // unkicked run's.
  EXPECT_LE(r1.hpwl, r0.hpwl);

  // Bit-determinism at a fixed seed, kicks included.
  db::Database db2 = kick_design();
  core::GlobalPlacer p2(db2, kicked);
  const auto r2 = p2.run();
  EXPECT_EQ(r1.hpwl, r2.hpwl);  // bitwise
  EXPECT_EQ(r1.kicks_accepted, r2.kicks_accepted);
}

// ---------------------------------------------------------------------------
// Protocol round-trips for the new verbs
// ---------------------------------------------------------------------------

TEST(PortfolioProtocol, SubmitPortfolioRoundTrip) {
  Request req;
  req.cmd = Command::kSubmitPortfolio;
  req.spec.design_hash = 0xabc123ULL;
  req.spec.max_iters = 500;
  req.spec.seed = 3;
  req.spec.label = "night";
  req.spec.deadline_s = 90.0;
  req.k = 4;
  req.kill_min_iter = 40;
  req.kill_margin = 1.1;
  req.kill_slack = -0.25;  // negative slack must survive the wire
  req.no_kill = false;

  Request out;
  std::string err;
  ASSERT_TRUE(parse_request(build_request(req), &out, &err)) << err;
  EXPECT_EQ(out.cmd, Command::kSubmitPortfolio);
  EXPECT_EQ(out.spec.design_hash, req.spec.design_hash);
  EXPECT_EQ(out.spec.max_iters, 500);
  EXPECT_EQ(out.spec.seed, 3u);
  EXPECT_EQ(out.spec.label, "night");
  EXPECT_EQ(out.spec.deadline_s, 90.0);
  EXPECT_EQ(out.k, 4);
  EXPECT_EQ(out.kill_min_iter, 40);
  EXPECT_EQ(out.kill_margin, 1.1);
  EXPECT_EQ(out.kill_slack, -0.25);
  EXPECT_FALSE(out.no_kill);

  req.no_kill = true;
  ASSERT_TRUE(parse_request(build_request(req), &out, &err)) << err;
  EXPECT_TRUE(out.no_kill);
}

TEST(PortfolioProtocol, SubmitPortfolioRejectsBadK) {
  Request out;
  std::string err;
  EXPECT_FALSE(parse_request(
      R"({"cmd":"submit-portfolio","demo_cells":100})", &out, &err));
  EXPECT_FALSE(parse_request(
      R"({"cmd":"submit-portfolio","demo_cells":100,"k":1})", &out, &err));
  EXPECT_FALSE(parse_request(
      R"({"cmd":"submit-portfolio","demo_cells":100,"k":2.5})", &out, &err));
  EXPECT_TRUE(parse_request(
      R"({"cmd":"submit-portfolio","demo_cells":100,"k":2})", &out, &err))
      << err;
  EXPECT_EQ(out.k, 2);
}

TEST(PortfolioProtocol, StatusResultCancelRoundTrip) {
  for (const Command cmd : {Command::kBatchCancel, Command::kPortfolioStatus,
                            Command::kPortfolioResult}) {
    Request req;
    req.cmd = cmd;
    req.id = 17;
    if (cmd == Command::kPortfolioResult) {
      req.wait = true;
      req.timeout_s = 12.5;
    }
    Request out;
    std::string err;
    ASSERT_TRUE(parse_request(build_request(req), &out, &err))
        << to_string(cmd) << ": " << err;
    EXPECT_EQ(out.cmd, cmd);
    EXPECT_EQ(out.id, 17u);
    if (cmd == Command::kPortfolioResult) {
      EXPECT_TRUE(out.wait);
      EXPECT_EQ(out.timeout_s, 12.5);
    }
  }
  // The id is required for all three.
  Request out;
  std::string err;
  EXPECT_FALSE(parse_request(R"({"cmd":"batch-cancel"})", &out, &err));
  EXPECT_FALSE(parse_request(R"({"cmd":"portfolio-status"})", &out, &err));
}

TEST(PortfolioProtocol, PerturbationScalesRideTheSpec) {
  Request req;
  req.cmd = Command::kSubmit;
  req.spec.demo_cells = 200;
  req.spec.init_noise_scale = 2.5;
  req.spec.gamma_scale = 0.8;
  req.spec.lambda_scale = 1.5;
  Request out;
  std::string err;
  ASSERT_TRUE(parse_request(build_request(req), &out, &err)) << err;
  EXPECT_EQ(out.spec.init_noise_scale, 2.5);
  EXPECT_EQ(out.spec.gamma_scale, 0.8);
  EXPECT_EQ(out.spec.lambda_scale, 1.5);
}

}  // namespace
}  // namespace xplace::server
