#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "util/arg_parser.h"
#include "util/geometry.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xplace {
namespace {

// ---------------- Rng ----------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

// ---------------- geometry ----------------

TEST(Rect, OverlapAreaBasic) {
  RectD a{0, 0, 10, 10};
  RectD b{5, 5, 15, 15};
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 25.0);
  EXPECT_DOUBLE_EQ(b.overlap_area(a), 25.0);
}

TEST(Rect, OverlapAreaDisjointIsZero) {
  RectD a{0, 0, 1, 1};
  RectD b{2, 2, 3, 3};
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 0.0);
  EXPECT_FALSE(a.overlaps(b));
}

TEST(Rect, TouchingEdgesDoNotOverlap) {
  RectD a{0, 0, 1, 1};
  RectD b{1, 0, 2, 1};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 0.0);
}

TEST(Rect, ContainedRect) {
  RectD outer{0, 0, 10, 10};
  RectD inner{2, 2, 4, 5};
  EXPECT_DOUBLE_EQ(outer.overlap_area(inner), inner.area());
}

TEST(Rect, UnitedCoversBoth) {
  RectD a{0, 0, 1, 1}, b{5, -2, 6, 3};
  RectD u = a.united(b);
  EXPECT_DOUBLE_EQ(u.lx, 0.0);
  EXPECT_DOUBLE_EQ(u.ly, -2.0);
  EXPECT_DOUBLE_EQ(u.hx, 6.0);
  EXPECT_DOUBLE_EQ(u.hy, 3.0);
}

TEST(Rect, CenterAndDims) {
  RectD r{1, 2, 5, 10};
  EXPECT_DOUBLE_EQ(r.cx(), 3.0);
  EXPECT_DOUBLE_EQ(r.cy(), 6.0);
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 8.0);
  EXPECT_DOUBLE_EQ(r.area(), 32.0);
}

// ---------------- thread pool ----------------

TEST(ThreadPool, CoversAllIndicesOnce) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SingleThreadDegeneratesToLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t count = 0;
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e, std::size_t w) {
    EXPECT_EQ(w, 0u);
    count += e - b;
  });
  EXPECT_EQ(count, 1000u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(1000, [&](std::size_t b, std::size_t e, std::size_t) {
      long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 999L * 1000 / 2);
  }
}

// ---------------- timers ----------------

TEST(Timer, StopwatchMeasuresNonNegative) {
  Stopwatch w;
  volatile double x = 0;
  for (int i = 0; i < 10000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GE(w.seconds(), 0.0);
}

TEST(Timer, RegistryAccumulates) {
  TimerRegistry reg;
  reg.add("a", 0.5);
  reg.add("a", 0.25);
  reg.add("b", 1.0);
  EXPECT_DOUBLE_EQ(reg.total("a"), 0.75);
  EXPECT_DOUBLE_EQ(reg.total("b"), 1.0);
  EXPECT_EQ(reg.calls("a"), 2u);
  EXPECT_FALSE(reg.contains("missing"));
  EXPECT_FALSE(reg.report().empty());
}

TEST(Timer, ScopedTimerAddsEntry) {
  TimerRegistry reg;
  {
    ScopedTimer t(reg, "scope");
  }
  EXPECT_TRUE(reg.contains("scope"));
  EXPECT_EQ(reg.calls("scope"), 1u);
}

TEST(Timer, RegistryIsThreadSafe) {
  TimerRegistry reg;
  ThreadPool pool(4);
  pool.parallel_for(10000, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) {
      reg.add("shared", 0.001);
      reg.add("key" + std::to_string(i % 7), 0.002);
    }
  });
  EXPECT_EQ(reg.calls("shared"), 10000u);
  EXPECT_NEAR(reg.total("shared"), 10.0, 1e-6);
  std::uint64_t spread = 0;
  for (int k = 0; k < 7; ++k) spread += reg.calls("key" + std::to_string(k));
  EXPECT_EQ(spread, 10000u);
}

// ---------------- arg parser ----------------

TEST(ArgParser, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=x", "pos1", "--gamma", "--delta", "2.5"};
  ArgParser args(8, const_cast<char**>(argv));
  EXPECT_TRUE(args.ok());
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta"), "x");
  EXPECT_TRUE(args.get_bool("gamma", false));
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), 2.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(ArgParser, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_EQ(args.get("s", "d"), "d");
  EXPECT_FALSE(args.get_bool("b", false));
  EXPECT_FALSE(args.has("n"));
}

}  // namespace
}  // namespace xplace
