// SIMD kernel-layer parity tests (util/simd.h).
//
// Contracts verified here (DESIGN.md §10):
//   * backend selection: env policy resolution, explicit select(), fallback,
//   * bitwise scalar-vs-AVX2 equality for the elementwise/min-max/axpy
//     kernels, swept over n = 1 .. 2·lanes+3 and unaligned base pointers
//     (exercises masked heads, full vectors, and remainder tails),
//   * vectorized exp within 2 ULP of std::expf on the WA range (-87.3, 0],
//   * reductions and WA/density/FFT/optimizer kernels within documented
//     tolerances of the scalar backend (double accumulators),
//   * fused optimizer kernels bitwise-equal to scalar,
//   * GP end-to-end: AVX2 matches scalar within 1e-4 relative after 20
//     iterations and is bitwise run-to-run deterministic at fixed ISA.
//
// Every AVX2 case skips (not fails) on hardware without AVX2+FMA.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/placer.h"
#include "fft/dct.h"
#include "fft/fft.h"
#include "io/generator.h"
#include "telemetry/metrics.h"
#include "util/rng.h"
#include "util/simd.h"

namespace xplace {
namespace {

constexpr std::size_t kMaxN = 19;  // 2·8 lanes + 3
constexpr std::size_t kPad = 8;    // head room for unaligned base offsets

bool have_avx2() { return simd::cpu_has_avx2(); }

#define XP_REQUIRE_AVX2() \
  if (!have_avx2()) GTEST_SKIP() << "CPU lacks AVX2+FMA"

std::vector<float> random_floats(std::size_t n, std::uint64_t seed,
                                 float lo = -8.0f, float hi = 8.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = lo + (hi - lo) * static_cast<float>(rng.uniform());
  return v;
}

/// ULP distance between two finite same-sign floats.
std::int64_t ulp_diff(float a, float b) {
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, 4);
  std::memcpy(&ib, &b, 4);
  // Map to a monotonic integer line (two's-complement trick).
  const std::int64_t ma = ia < 0 ? std::int64_t{INT32_MIN} - ia : ia;
  const std::int64_t mb = ib < 0 ? std::int64_t{INT32_MIN} - ib : ib;
  return ma > mb ? ma - mb : mb - ma;
}

// ---------------- selection & dispatch ----------------

TEST(SimdSelect, PolicyResolution) {
  EXPECT_EQ(simd::resolve_policy("off"), simd::Isa::kScalar);
  EXPECT_EQ(simd::resolve_policy("scalar"), simd::Isa::kScalar);
  const simd::Isa best =
      have_avx2() ? simd::Isa::kAvx2 : simd::Isa::kScalar;
  EXPECT_EQ(simd::resolve_policy(nullptr), best);
  EXPECT_EQ(simd::resolve_policy(""), best);
  EXPECT_EQ(simd::resolve_policy("auto"), best);
  EXPECT_EQ(simd::resolve_policy("avx2"), best);     // falls back if absent
  EXPECT_EQ(simd::resolve_policy("bogus"), best);    // warn + auto
}

TEST(SimdSelect, ExplicitSelectWinsAndReports) {
  EXPECT_TRUE(simd::select("scalar"));
  EXPECT_EQ(simd::isa(), simd::Isa::kScalar);
  EXPECT_STREQ(simd::active().name, "scalar");
  EXPECT_FALSE(simd::select("bogus"));
  EXPECT_EQ(simd::isa(), simd::Isa::kScalar);  // unchanged on failure
  if (have_avx2()) {
    EXPECT_TRUE(simd::select("avx2"));
    EXPECT_EQ(simd::isa(), simd::Isa::kAvx2);
    EXPECT_STREQ(simd::active().name, "avx2");
  } else {
    EXPECT_FALSE(simd::select("avx2"));
  }
  EXPECT_TRUE(simd::select("auto"));
}

TEST(SimdSelect, PublishesIsaGauge) {
  simd::select(simd::Isa::kScalar);
  telemetry::Registry reg;
  simd::publish(reg);
  EXPECT_EQ(reg.gauge("exec.simd.isa").value(), 0.0);
  if (have_avx2()) {
    simd::select(simd::Isa::kAvx2);
    simd::publish(reg);
    EXPECT_EQ(reg.gauge("exec.simd.isa").value(), 2.0);
  }
  simd::select("auto");
}

// ---------------- elementwise bitwise parity ----------------

/// Runs `fn(kernels, in_ptrs..., out_ptr, n)` for both backends over every
/// (size, base-offset) combination and requires bitwise-equal outputs.
template <typename Fn>
void sweep_bitwise(std::uint64_t seed, Fn&& fn) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  for (std::size_t n = 1; n <= kMaxN; ++n) {
    for (std::size_t off = 0; off < 4; ++off) {
      std::vector<float> a = random_floats(n + kPad, seed ^ (n * 131 + off));
      std::vector<float> b =
          random_floats(n + kPad, seed ^ (n * 257 + off + 1));
      std::vector<float> out_s(n + kPad, 0.0f), out_a(n + kPad, 0.0f);
      fn(ks, a.data() + off, b.data() + off, out_s.data() + off, n);
      fn(ka, a.data() + off, b.data() + off, out_a.data() + off, n);
      ASSERT_EQ(0, std::memcmp(out_s.data(), out_a.data(),
                               (n + kPad) * sizeof(float)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdBitwise, Add) {
  sweep_bitwise(1, [](const simd::Kernels& k, const float* a, const float* b,
                      float* o, std::size_t n) { k.add(a, b, o, n); });
}
TEST(SimdBitwise, Sub) {
  sweep_bitwise(2, [](const simd::Kernels& k, const float* a, const float* b,
                      float* o, std::size_t n) { k.sub(a, b, o, n); });
}
TEST(SimdBitwise, Mul) {
  sweep_bitwise(3, [](const simd::Kernels& k, const float* a, const float* b,
                      float* o, std::size_t n) { k.mul(a, b, o, n); });
}
TEST(SimdBitwise, Maximum) {
  sweep_bitwise(4, [](const simd::Kernels& k, const float* a, const float* b,
                      float* o, std::size_t n) { k.maximum(a, b, o, n); });
}
TEST(SimdBitwise, Reciprocal) {
  sweep_bitwise(5, [](const simd::Kernels& k, const float* a, const float*,
                      float* o, std::size_t n) { k.reciprocal(a, o, n); });
}
TEST(SimdBitwise, NegAbs) {
  sweep_bitwise(6, [](const simd::Kernels& k, const float* a, const float*,
                      float* o, std::size_t n) { k.neg(a, o, n); });
  sweep_bitwise(7, [](const simd::Kernels& k, const float* a, const float*,
                      float* o, std::size_t n) { k.vabs(a, o, n); });
}
TEST(SimdBitwise, ScalarOperandOps) {
  sweep_bitwise(8, [](const simd::Kernels& k, const float* a, const float*,
                      float* o, std::size_t n) { k.mul_scalar(a, 1.7f, o, n); });
  sweep_bitwise(9, [](const simd::Kernels& k, const float* a, const float*,
                      float* o, std::size_t n) { k.add_scalar(a, -0.3f, o, n); });
  sweep_bitwise(10, [](const simd::Kernels& k, const float* a, const float*,
                       float* o, std::size_t n) { k.clamp_min(a, 0.25f, o, n); });
}
TEST(SimdBitwise, FillCopy) {
  sweep_bitwise(11, [](const simd::Kernels& k, const float*, const float*,
                       float* o, std::size_t n) { k.fill(o, 2.5f, n); });
  sweep_bitwise(12, [](const simd::Kernels& k, const float* a, const float*,
                       float* o, std::size_t n) { k.copy(o, a, n); });
}
TEST(SimdBitwise, InPlaceAxpyFamily) {
  sweep_bitwise(13, [](const simd::Kernels& k, const float* a, const float* b,
                       float* o, std::size_t n) {
    k.copy(o, a, n);
    k.add_(o, b, n);
  });
  sweep_bitwise(14, [](const simd::Kernels& k, const float* a, const float* b,
                       float* o, std::size_t n) {
    k.copy(o, a, n);
    k.axpy_(o, b, 0.37f, n);
  });
  sweep_bitwise(15, [](const simd::Kernels& k, const float* a, const float*,
                       float* o, std::size_t n) {
    k.copy(o, a, n);
    k.scal_(o, -1.1f, n);
  });
  sweep_bitwise(16, [](const simd::Kernels& k, const float* a, const float* b,
                       float* o, std::size_t n) {
    k.copy(o, a, n);
    k.axpby_(o, 0.9f, b, 0.2f, n);
  });
}
TEST(SimdBitwise, FusedOptimizerKernels) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  for (std::size_t n = 1; n <= kMaxN; ++n) {
    // precond_apply
    std::vector<float> nets = random_floats(n, 100 + n, 0.0f, 12.0f);
    std::vector<float> area = random_floats(n, 200 + n, 0.1f, 30.0f);
    std::vector<float> gx = random_floats(n, 300 + n);
    std::vector<float> gy = random_floats(n, 400 + n);
    std::vector<float> gx2 = gx, gy2 = gy;
    ks.precond_apply(gx.data(), gy.data(), nets.data(), area.data(), 0.8f, n);
    ka.precond_apply(gx2.data(), gy2.data(), nets.data(), area.data(), 0.8f,
                     n);
    ASSERT_EQ(0, std::memcmp(gx.data(), gx2.data(), n * 4)) << n;
    ASSERT_EQ(0, std::memcmp(gy.data(), gy2.data(), n * 4)) << n;

    // nesterov_update
    std::vector<float> v = random_floats(n, 500 + n, 0.0f, 100.0f);
    std::vector<float> g = random_floats(n, 600 + n);
    std::vector<float> u = random_floats(n, 700 + n, 0.0f, 100.0f);
    std::vector<float> lo(n, 5.0f), hi(n, 95.0f);
    std::vector<float> vp(n, 0.0f), gp(n, 0.0f);
    std::vector<float> v2 = v, u2 = u, vp2 = vp, gp2 = gp;
    ks.nesterov_update(v.data(), vp.data(), gp.data(), u.data(), g.data(),
                       lo.data(), hi.data(), n, 0.123, 0.5f);
    ka.nesterov_update(v2.data(), vp2.data(), gp2.data(), u2.data(), g.data(),
                       lo.data(), hi.data(), n, 0.123, 0.5f);
    ASSERT_EQ(0, std::memcmp(v.data(), v2.data(), n * 4)) << n;
    ASSERT_EQ(0, std::memcmp(u.data(), u2.data(), n * 4)) << n;
    ASSERT_EQ(0, std::memcmp(vp.data(), vp2.data(), n * 4)) << n;
    ASSERT_EQ(0, std::memcmp(gp.data(), gp2.data(), n * 4)) << n;
  }
}

// ---------------- vectorized exp ----------------

TEST(SimdExp, Within2UlpOnWaRange) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ka = simd::avx2_kernels();
  // The WA kernel's arguments are (x−max)/γ ∈ (-∞, 0]; beyond ≈−87.3 the
  // scalar expf underflows toward 0 and the vector kernel clamps. Sweep the
  // supported range densely.
  constexpr std::size_t kN = 200000;
  std::vector<float> in(kN), out(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    in[i] = -87.3f * static_cast<float>(kN - 1 - i) / (kN - 1);
  }
  ka.vexp(in.data(), out.data(), kN);
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    const float ref = std::exp(in[i]);
    worst = std::max(worst, ulp_diff(out[i], ref));
    ASSERT_LE(ulp_diff(out[i], ref), 2) << "x=" << in[i] << " got=" << out[i]
                                        << " want=" << ref;
  }
  // Sanity: exact at 0.
  float one_in = 0.0f, one_out = 0.0f;
  ka.vexp(&one_in, &one_out, 1);
  EXPECT_EQ(one_out, 1.0f);
  SUCCEED() << "worst ulp=" << worst;
}

// ---------------- reductions ----------------

TEST(SimdReduce, MatchesScalarWithinTolerance) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  for (std::size_t n : {1u, 7u, 8u, 9u, 16u, 19u, 1000u, 4097u}) {
    std::vector<float> a = random_floats(n, 900 + n);
    std::vector<float> b = random_floats(n, 901 + n);
    EXPECT_NEAR(ka.sum(a.data(), n), ks.sum(a.data(), n), 1e-9 * n) << n;
    EXPECT_NEAR(ka.abs_sum(a.data(), n), ks.abs_sum(a.data(), n), 1e-9 * n)
        << n;
    EXPECT_NEAR(ka.dot(a.data(), b.data(), n), ks.dot(a.data(), b.data(), n),
                1e-8 * n)
        << n;
    EXPECT_NEAR(ka.diff_sq_sum(a.data(), b.data(), n),
                ks.diff_sq_sum(a.data(), b.data(), n), 1e-8 * n)
        << n;
    // Order-independent reductions must be exactly equal.
    EXPECT_EQ(ka.max_value(a.data(), n), ks.max_value(a.data(), n)) << n;
    EXPECT_EQ(ka.min_value(a.data(), n), ks.min_value(a.data(), n)) << n;
    EXPECT_EQ(ka.abs_max(a.data(), n), ks.abs_max(a.data(), n)) << n;
  }
}

TEST(SimdReduce, FiniteStatsCountsNonfinite) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  for (std::size_t n : {1u, 8u, 13u, 64u, 1001u}) {
    std::vector<float> a = random_floats(n, 950 + n);
    if (n > 2) {
      a[n / 2] = std::numeric_limits<float>::quiet_NaN();
      a[n - 1] = std::numeric_limits<float>::infinity();
      if (n > 4) a[1] = -std::numeric_limits<float>::infinity();
    }
    std::size_t bad_s = 0, bad_a = 0;
    double sum_s = 0.0, sum_a = 0.0;
    ks.finite_stats(a.data(), n, &bad_s, &sum_s);
    ka.finite_stats(a.data(), n, &bad_a, &sum_a);
    EXPECT_EQ(bad_a, bad_s) << n;
    EXPECT_NEAR(sum_a, sum_s, 1e-9 * n) << n;
  }
}

// ---------------- WA primitives ----------------

TEST(SimdWa, GatherAndMinmaxBitwise) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  const std::size_t cells = 40;
  std::vector<float> pos = random_floats(cells, 42, 0.0f, 500.0f);
  for (std::size_t n = 1; n <= kMaxN; ++n) {
    Rng rng(n * 7 + 1);
    std::vector<std::uint32_t> cell(n);
    for (auto& c : cell)
      c = static_cast<std::uint32_t>(rng.uniform() * cells) % cells;
    std::vector<float> off = random_floats(n, 43 + n, -4.0f, 4.0f);
    std::vector<float> px_s(n), px_a(n);
    ks.gather_pin_pos(pos.data(), cell.data(), off.data(), px_s.data(), n);
    ka.gather_pin_pos(pos.data(), cell.data(), off.data(), px_a.data(), n);
    ASSERT_EQ(0, std::memcmp(px_s.data(), px_a.data(), n * 4)) << n;
    float lo_s, hi_s, lo_a, hi_a;
    ks.minmax(px_s.data(), n, &lo_s, &hi_s);
    ka.minmax(px_a.data(), n, &lo_a, &hi_a);
    EXPECT_EQ(lo_a, lo_s) << n;
    EXPECT_EQ(hi_a, hi_s) << n;
  }
}

TEST(SimdWa, SumsAndGradWithinTolerance) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  const float inv_gamma = 1.0f / 3.5f;
  for (std::size_t n = 1; n <= kMaxN; ++n) {
    std::vector<float> px = random_floats(n, 70 + n, 0.0f, 120.0f);
    float lo, hi;
    ks.minmax(px.data(), n, &lo, &hi);
    std::vector<float> s_s(n), u_s(n), s_a(n), u_a(n);
    const simd::WaSums ts =
        ks.wa_sums(px.data(), n, lo, hi, inv_gamma, s_s.data(), u_s.data());
    const simd::WaSums ta =
        ka.wa_sums(px.data(), n, lo, hi, inv_gamma, s_a.data(), u_a.data());
    // Per-pin exp terms: ≤2 ULP; aggregated sums: tight relative tolerance.
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(ulp_diff(s_a[i], s_s[i]), 2) << "s n=" << n << " i=" << i;
      ASSERT_LE(ulp_diff(u_a[i], u_s[i]), 2) << "u n=" << n << " i=" << i;
    }
    EXPECT_NEAR(ta.sum_e_max, ts.sum_e_max, 1e-6 * ts.sum_e_max) << n;
    EXPECT_NEAR(ta.sum_e_min, ts.sum_e_min, 1e-6 * ts.sum_e_min) << n;

    const double wl_max = ts.sum_xe_max / ts.sum_e_max;
    const double wl_min = ts.sum_xe_min / ts.sum_e_min;
    std::vector<float> d_s(n), d_a(n);
    ks.wa_grad(px.data(), s_s.data(), u_s.data(), n, inv_gamma, wl_max,
               wl_min, 1.0 / ts.sum_e_max, 1.0 / ts.sum_e_min, 1.0f,
               d_s.data());
    ka.wa_grad(px.data(), s_s.data(), u_s.data(), n, inv_gamma, wl_max,
               wl_min, 1.0 / ts.sum_e_max, 1.0 / ts.sum_e_min, 1.0f,
               d_a.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(d_a[i], d_s[i], 1e-6) << "d n=" << n << " i=" << i;
    }
  }
}

// ---------------- density bin spans ----------------

TEST(SimdDensity, SpanScatterGatherMatchScalar) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  const double h = 2.0, ly0 = 10.0;
  for (std::size_t n = 1; n <= 11; ++n) {
    // Cell span partially covers the run, including clamped end bins.
    const double ly = ly0 + 0.7 * h, hy = ly0 + (n - 0.3) * h;
    std::vector<double> map_s(n, 0.5), map_a(n, 0.5);
    ks.span_scatter(map_s.data(), n, ly, hy, ly0, h, 0.25);
    ka.span_scatter(map_a.data(), n, ly, hy, ly0, h, 0.25);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(map_a[j], map_s[j], 1e-12) << "n=" << n << " j=" << j;
    }

    std::vector<double> ex(n), ey(n);
    Rng rng(n);
    for (std::size_t j = 0; j < n; ++j) {
      ex[j] = rng.uniform() - 0.5;
      ey[j] = rng.uniform() - 0.5;
    }
    double fx_s = 0.0, fy_s = 0.0, fx_a = 0.0, fy_a = 0.0;
    ks.span_gather(ex.data(), ey.data(), n, ly, hy, ly0, h, 1.5, &fx_s, &fy_s);
    ka.span_gather(ex.data(), ey.data(), n, ly, hy, ly0, h, 1.5, &fx_a, &fy_a);
    EXPECT_NEAR(fx_a, fx_s, 1e-12) << n;
    EXPECT_NEAR(fy_a, fy_s, 1e-12) << n;
  }
}

// ---------------- FFT butterflies ----------------

TEST(SimdFft, PassAndFullTransformMatchScalar) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  for (std::size_t n : {2u, 4u, 8u, 64u, 256u}) {
    // Build one stage's twiddles exactly like fft.cpp does for size n.
    std::vector<std::complex<double>> tw(n / 2);
    for (std::size_t kk = 0; kk < n / 2; ++kk) {
      const double ang = -2.0 * 3.14159265358979323846 *
                         static_cast<double>(kk) / static_cast<double>(n);
      tw[kk] = {std::cos(ang), std::sin(ang)};
    }
    Rng rng(n);
    std::vector<double> d_s(2 * n), d_a(2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i) d_s[i] = rng.uniform() - 0.5;
    d_a = d_s;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      ks.fft_pass(d_s.data(), reinterpret_cast<const double*>(tw.data()), n,
                  len, n / len);
      ka.fft_pass(d_a.data(), reinterpret_cast<const double*>(tw.data()), n,
                  len, n / len);
      for (std::size_t i = 0; i < 2 * n; ++i) {
        ASSERT_NEAR(d_a[i], d_s[i], 1e-12 * n) << "n=" << n << " len=" << len;
      }
    }
    // conj_scale parity on identical inputs (the post-pass buffers can
    // differ in last bits, so compare on a shared copy).
    std::vector<double> c_s = d_s, c_a = d_s;
    ks.conj_scale(c_s.data(), n, 1.0 / n);
    ka.conj_scale(c_a.data(), n, 1.0 / n);
    for (std::size_t i = 0; i < 2 * n; ++i) {
      ASSERT_EQ(c_a[i], c_s[i]) << i;
    }
  }
}

TEST(SimdFft, FullRoundTripUnderEitherBackend) {
  // fft/ifft route through the active table: a round trip must reconstruct
  // the input under both backends.
  for (const char* backend : {"scalar", "avx2"}) {
    if (std::strcmp(backend, "avx2") == 0 && !have_avx2()) continue;
    ASSERT_TRUE(simd::select(backend));
    Rng rng(99);
    std::vector<fft::Complex> x(128);
    for (auto& c : x) c = {rng.uniform() - 0.5, rng.uniform() - 0.5};
    std::vector<fft::Complex> y = x;
    fft::fft(y.data(), y.size());
    fft::ifft(y.data(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(y[i].real(), x[i].real(), 1e-12) << backend << " " << i;
      EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-12) << backend << " " << i;
    }
  }
  simd::select("auto");
}

// ---------------- DCT glue ----------------

TEST(SimdFft, DctGlueKernelsMatchScalar) {
  XP_REQUIRE_AVX2();
  const simd::Kernels& ks = simd::scalar_kernels();
  const simd::Kernels& ka = simd::avx2_kernels();
  for (std::size_t n : {2u, 4u, 8u, 64u, 128u}) {
    Rng rng(7 * n);
    // Phases as dct.cpp builds them: e^{-iπk/(2N)}.
    std::vector<std::complex<double>> ph(n);
    for (std::size_t k = 0; k < n; ++k) {
      const double ang = -3.14159265358979323846 * static_cast<double>(k) /
                         (2.0 * static_cast<double>(n));
      ph[k] = {std::cos(ang), std::sin(ang)};
    }
    const double* phd = reinterpret_cast<const double*>(ph.data());
    std::vector<double> x(n);
    for (auto& e : x) e = rng.uniform() - 0.5;

    // Pack/unpack are pure data movement: bitwise equality.
    std::vector<double> v_s(2 * n, -1.0), v_a(2 * n, -1.0);
    ks.dct_pack(x.data(), v_s.data(), n);
    ka.dct_pack(x.data(), v_a.data(), n);
    ASSERT_EQ(std::memcmp(v_s.data(), v_a.data(), 2 * n * sizeof(double)), 0)
        << "dct_pack n=" << n;

    std::vector<double> u_s(n, 0.0), u_a(n, 0.0);
    ks.idct_unpack(v_s.data(), u_s.data(), n);
    ka.idct_unpack(v_s.data(), u_a.data(), n);
    ASSERT_EQ(std::memcmp(u_s.data(), u_a.data(), n * sizeof(double)), 0)
        << "idct_unpack n=" << n;

    // Rotate/pre-twiddle multiply by phases: tolerance parity.
    std::vector<double> vc(2 * n);
    for (auto& e : vc) e = rng.uniform() - 0.5;
    std::vector<double> r_s(n), r_a(n);
    ks.dct_rotate(vc.data(), phd, r_s.data(), n);
    ka.dct_rotate(vc.data(), phd, r_a.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(r_a[i], r_s[i], 1e-14) << "dct_rotate n=" << n;
    }

    std::vector<double> w_s(2 * n, 0.0), w_a(2 * n, 0.0);
    ks.idct_pretwiddle(x.data(), phd, w_s.data(), n);
    ka.idct_pretwiddle(x.data(), phd, w_a.data(), n);
    for (std::size_t i = 2; i < 2 * n; ++i) {  // caller seeds slot 0
      ASSERT_NEAR(w_a[i], w_s[i], 1e-14) << "idct_pretwiddle n=" << n;
    }
  }
}

TEST(SimdFft, DctRoundTripUnderEitherBackend) {
  // dct→idct and idxst sign identity must hold under both backends, and the
  // AVX2 transforms must match scalar within FFT rounding tolerance.
  std::vector<double> ref_dct;
  for (const char* backend : {"scalar", "avx2"}) {
    if (std::strcmp(backend, "avx2") == 0 && !have_avx2()) continue;
    ASSERT_TRUE(simd::select(backend));
    Rng rng(3);
    std::vector<double> x(128);
    for (auto& e : x) e = rng.uniform() - 0.5;
    std::vector<double> y = fft::dct(x);
    if (ref_dct.empty()) {
      ref_dct = y;
    } else {
      for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_NEAR(y[i], ref_dct[i], 1e-10) << i;
      }
    }
    const std::vector<double> z = fft::idct(y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(z[i], x[i], 1e-10) << backend << " " << i;
    }
    const std::vector<double> s = fft::idxst(y);
    ASSERT_EQ(s.size(), x.size());
  }
  simd::select("auto");
}

// ---------------- GP end-to-end ----------------

db::Database simd_db(std::uint64_t seed = 23) {
  io::GeneratorSpec spec;
  spec.name = "simd_unit";
  spec.num_cells = 600;
  spec.num_nets = 660;
  spec.seed = seed;
  return io::generate(spec);
}

core::PlacerConfig simd_cfg(int iters) {
  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 64;
  cfg.max_iters = iters;
  cfg.threads = 1;
  return cfg;
}

TEST(SimdGP, Avx2MatchesScalarWithin1e4After20Iters) {
  XP_REQUIRE_AVX2();
  simd::select(simd::Isa::kScalar);
  db::Database db_s = simd_db();
  core::GlobalPlacer ps(db_s, simd_cfg(20));
  const core::GlobalPlaceResult rs = ps.run();

  simd::select(simd::Isa::kAvx2);
  db::Database db_a = simd_db();
  core::GlobalPlacer pa(db_a, simd_cfg(20));
  const core::GlobalPlaceResult ra = pa.run();
  simd::select("auto");

  ASSERT_TRUE(std::isfinite(ra.hpwl));
  EXPECT_NEAR(ra.hpwl, rs.hpwl, 1e-4 * rs.hpwl);
  EXPECT_NEAR(ra.overflow, rs.overflow, 1e-4);
}

TEST(SimdGP, Avx2BitwiseRunToRunDeterministic) {
  XP_REQUIRE_AVX2();
  simd::select(simd::Isa::kAvx2);
  db::Database db_a = simd_db();
  core::GlobalPlacer pa(db_a, simd_cfg(40));
  pa.run();
  db::Database db_b = simd_db();
  core::GlobalPlacer pb(db_b, simd_cfg(40));
  pb.run();
  simd::select("auto");
  for (std::size_t c = 0; c < db_a.num_movable(); ++c) {
    ASSERT_EQ(db_a.x(c), db_b.x(c)) << c;
    ASSERT_EQ(db_a.y(c), db_b.y(c)) << c;
  }
}

}  // namespace
}  // namespace xplace
