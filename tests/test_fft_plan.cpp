// Tests for the fused FFT/DCT plan engine (fft/plan.h, DESIGN.md §15):
// numerical parity against the naive O(N²) references across every
// power-of-two size the solver can see, bitwise scalar↔AVX2 and
// pooled↔serial agreement, plan-cache thread-safety under first-build races
// (the "concurrency" label puts this binary in the TSan lane), and the
// PoissonSolver's batched pass pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "fft/dct.h"
#include "fft/plan.h"
#include "fft/reference.h"
#include "ops/electrostatics.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace xplace::fft {
namespace {

std::vector<double> random_buf(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

using RefFn = std::vector<double> (*)(const std::vector<double>&);

/// Separable 2-D reference: naive 1-D transform along every row (dimension
/// 1), then along every column (dimension 0) — the same pass order the plan
/// executors use.
std::vector<double> ref_2d(const std::vector<double>& in, std::size_t rows,
                           std::size_t cols, RefFn row_fn, RefFn col_fn) {
  std::vector<double> data = in;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> line(data.begin() + r * cols,
                             data.begin() + (r + 1) * cols);
    line = row_fn(line);
    std::copy(line.begin(), line.end(), data.begin() + r * cols);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    std::vector<double> line(rows);
    for (std::size_t r = 0; r < rows; ++r) line[r] = data[r * cols + c];
    line = col_fn(line);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = line[r];
  }
  return data;
}

// ---- 1-D pair core vs the naive references --------------------------------

TEST(FftPlan, TransformPairMatchesNaiveAcrossSizes) {
  for (std::size_t n = 2; n <= 1024; n <<= 1) {
    const Plan& p = plan(n);
    const std::vector<double> a = random_buf(n, 17 + n);
    const std::vector<double> b = random_buf(n, 29 + n);
    std::vector<double> z(2 * n);
    const double tol = 1e-9 * static_cast<double>(n);

    struct Case {
      Kind1D kind;
      RefFn ref;
    };
    const Case cases[] = {{Kind1D::kDct, reference::dct2_naive_1d},
                          {Kind1D::kIdct, reference::idct_naive_1d},
                          {Kind1D::kIdxst, reference::idxst_naive_1d}};
    for (const Case& c : cases) {
      std::vector<double> da(n), db(n);
      transform_pair(p, c.kind, a.data(), b.data(), da.data(), db.data(),
                     /*stride=*/1, z.data());
      const std::vector<double> ra = c.ref(a);
      const std::vector<double> rb = c.ref(b);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(da[i], ra[i], tol) << "kind=" << int(c.kind) << " n=" << n;
        ASSERT_NEAR(db[i], rb[i], tol) << "kind=" << int(c.kind) << " n=" << n;
      }
    }
  }
}

TEST(FftPlan, SelfPairMatchesDistinctPair) {
  // The odd-leftover line runs as a pair with itself (sb == sa, db == da);
  // the result must equal the b-sequence output of a distinct-buffer run.
  for (std::size_t n : {4u, 64u}) {
    const Plan& p = plan(n);
    const std::vector<double> x = random_buf(n, 5 + n);
    std::vector<double> z(2 * n);
    for (Kind1D kind : {Kind1D::kDct, Kind1D::kIdct, Kind1D::kIdxst}) {
      std::vector<double> self(n), da(n), db(n);
      transform_pair(p, kind, x.data(), x.data(), self.data(), self.data(), 1,
                     z.data());
      transform_pair(p, kind, x.data(), x.data(), da.data(), db.data(), 1,
                     z.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(self[i], db[i]) << "kind=" << int(kind) << " n=" << n;
      }
    }
  }
}

// ---- 2-D wrappers vs the separable reference (incl. degenerate shapes) ----

TEST(FftPlan, TwoDTransformsMatchNaiveOnNonSquareShapes) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {8, 64}, {64, 8}, {16, 16}, {1, 16}, {16, 1}, {2, 256}, {256, 2}};
  for (const auto& [rows, cols] : shapes) {
    const std::vector<double> in = random_buf(rows * cols, 3 * rows + cols);
    const double tol = 1e-9 * static_cast<double>(rows * cols);

    std::vector<double> got = in;
    dct2(got.data(), rows, cols);
    std::vector<double> want = ref_2d(in, rows, cols, reference::dct2_naive_1d,
                                      reference::dct2_naive_1d);
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_NEAR(got[i], want[i], tol) << rows << "x" << cols << " dct2 @" << i;

    got = in;
    idct2(got.data(), rows, cols);
    want = ref_2d(in, rows, cols, reference::idct_naive_1d,
                  reference::idct_naive_1d);
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_NEAR(got[i], want[i], tol) << rows << "x" << cols << " idct2 @" << i;

    got = in;
    idxst_idct(got.data(), rows, cols);
    want = ref_2d(in, rows, cols, reference::idct_naive_1d,
                  reference::idxst_naive_1d);
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_NEAR(got[i], want[i], tol)
          << rows << "x" << cols << " idxst_idct @" << i;

    got = in;
    idct_idxst(got.data(), rows, cols);
    want = ref_2d(in, rows, cols, reference::idxst_naive_1d,
                  reference::idct_naive_1d);
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_NEAR(got[i], want[i], tol)
          << rows << "x" << cols << " idct_idxst @" << i;
  }
}

TEST(FftPlan, DctIdctRoundTripRecoversInput) {
  for (std::size_t n = 2; n <= 1024; n <<= 1) {
    const std::vector<double> x = random_buf(n, 7 + n);
    std::vector<double> y = x;
    dct(y.data(), n);
    idct(y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(y[i], x[i], 1e-9 * static_cast<double>(n)) << "n=" << n;
    }
  }
}

// ---- bitwise contracts ----------------------------------------------------

TEST(FftPlan, ScalarAndAvx2AreBitwiseIdentical) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  for (const auto& [rows, cols] : {std::pair<std::size_t, std::size_t>{64, 64},
                                   {8, 128},
                                   {128, 8},
                                   {2, 2}}) {
    const std::vector<double> in = random_buf(rows * cols, 11 * rows + cols);
    for (int t = 0; t < 4; ++t) {
      std::vector<double> a = in, b = in;
      auto run = [&](std::vector<double>& d) {
        switch (t) {
          case 0: dct2(d.data(), rows, cols); break;
          case 1: idct2(d.data(), rows, cols); break;
          case 2: idxst_idct(d.data(), rows, cols); break;
          default: idct_idxst(d.data(), rows, cols); break;
        }
      };
      simd::select(simd::Isa::kScalar);
      run(a);
      simd::select(simd::Isa::kAvx2);
      run(b);
      simd::select("auto");
      ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
          << rows << "x" << cols << " transform " << t;
    }
  }
}

TEST(FftPlan, PooledMatchesSerialBitwiseAndRunToRun) {
  ThreadPool pool(4);
  for (const auto& [rows, cols] : {std::pair<std::size_t, std::size_t>{64, 64},
                                   {32, 128},
                                   {128, 32}}) {
    const std::vector<double> in = random_buf(rows * cols, rows + 13 * cols);
    std::vector<double> serial = in, pooled1 = in, pooled2 = in;
    idxst_idct(serial.data(), rows, cols, nullptr);
    idxst_idct(pooled1.data(), rows, cols, &pool);
    idxst_idct(pooled2.data(), rows, cols, &pool);
    ASSERT_EQ(0, std::memcmp(serial.data(), pooled1.data(),
                             serial.size() * sizeof(double)));
    ASSERT_EQ(0, std::memcmp(pooled1.data(), pooled2.data(),
                             pooled1.size() * sizeof(double)));
  }
}

// ---- plan cache -----------------------------------------------------------

TEST(FftPlan, PlanCacheReturnsSameInstanceUnderConcurrentFirstBuild) {
  // Fresh process (one test per ctest entry): size 4096 is not built yet, so
  // all threads race the first build and must agree on one immutable plan.
  constexpr std::size_t kN = 4096;
  constexpr int kThreads = 8;
  std::atomic<const Plan*> seen[kThreads];
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      seen[t].store(&plan(kN));
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0].load(), seen[t].load());
  }
  const Plan& p = *seen[0].load();
  EXPECT_EQ(p.n, kN);
  EXPECT_EQ(p.tw.size(), kN - 1);  // Σ len/2 over stages = n − 1
  EXPECT_EQ(p.ph.size(), kN);
  EXPECT_EQ(p.fwd_perm.size(), kN);
}

// ---- solver integration ---------------------------------------------------

TEST(FftPlan, PoissonSolverPooledMatchesSerialBitwise) {
  constexpr int kM = 64;
  const std::vector<double> rho = random_buf(kM * kM, 123);
  ops::PoissonSolver serial(kM, 1.0, 1.0);
  serial.solve(rho.data(), /*want_potential=*/true);

  ThreadPool pool(4);
  ops::PoissonSolver pooled(kM, 1.0, 1.0);
  pooled.set_pool(&pool);
  pooled.solve(rho.data(), /*want_potential=*/true);
  pooled.solve(rho.data(), /*want_potential=*/true);  // run-to-run

  ASSERT_EQ(0, std::memcmp(serial.ex().data(), pooled.ex().data(),
                           serial.ex().size() * sizeof(double)));
  ASSERT_EQ(0, std::memcmp(serial.ey().data(), pooled.ey().data(),
                           serial.ey().size() * sizeof(double)));
  ASSERT_EQ(0, std::memcmp(serial.psi().data(), pooled.psi().data(),
                           serial.psi().size() * sizeof(double)));
  EXPECT_EQ(serial.energy(rho.data()), pooled.energy(rho.data()));
}

TEST(FftPlan, PoissonSolverFieldHasZeroMeanPotentialGradientStructure) {
  // ψ from a pure cos(w_u x)cos(w_v y) density must come back scaled by
  // 1/(w_u² + w_v²) — the spectral scale fused into the column pass.
  constexpr int kM = 32;
  constexpr std::size_t kN = static_cast<std::size_t>(kM) * kM;
  std::vector<double> rho(kN);
  const double wu = std::numbers::pi * 2.0 / kM;  // u = 2, bin_w = 1
  const double wv = std::numbers::pi * 3.0 / kM;  // v = 3
  for (int x = 0; x < kM; ++x) {
    for (int y = 0; y < kM; ++y) {
      rho[static_cast<std::size_t>(x) * kM + y] =
          std::cos(wu * (x + 0.5)) * std::cos(wv * (y + 0.5));
    }
  }
  ops::PoissonSolver solver(kM, 1.0, 1.0);
  solver.solve(rho.data(), /*want_potential=*/true);
  const double scale = 1.0 / (wu * wu + wv * wv);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_NEAR(solver.psi()[i], rho[i] * scale, 1e-9);
  }
}

}  // namespace
}  // namespace xplace::fft
