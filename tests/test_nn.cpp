#include <gtest/gtest.h>

#include <cmath>

#include "nn/data.h"
#include "nn/fno.h"
#include "nn/guidance.h"
#include "fft/fft.h"
#include "nn/layers.h"
#include "ops/electrostatics.h"
#include "util/rng.h"

namespace xplace::nn {
namespace {

/// Central finite-difference check of dL/dparam and dL/dinput for a scalar
/// loss L = Σ y·mask built on a layer's forward.
constexpr double kEps = 1e-5;

std::vector<double> random_vec(std::size_t n, std::uint64_t seed,
                               double scale = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(0.0, scale);
  return v;
}

double weighted_sum(const std::vector<double>& y,
                    const std::vector<double>& mask) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) acc += y[i] * mask[i];
  return acc;
}

// ---------------- Conv1x1 ----------------

TEST(Conv1x1, ForwardMatchesManual) {
  Rng rng(1);
  Conv1x1 conv(2, 1, rng);
  conv.weight().value = {0.5, -2.0};
  conv.bias().value = {1.0};
  std::vector<double> x = {1, 2, 3,   // channel 0
                           4, 5, 6};  // channel 1
  std::vector<double> y;
  conv.forward(x, 3, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_NEAR(y[0], 1.0 + 0.5 * 1 - 2.0 * 4, 1e-12);
  EXPECT_NEAR(y[2], 1.0 + 0.5 * 3 - 2.0 * 6, 1e-12);
}

TEST(Conv1x1, GradientsMatchFiniteDifference) {
  Rng rng(2);
  Conv1x1 conv(3, 2, rng);
  const std::size_t n_pix = 5;
  std::vector<double> x = random_vec(3 * n_pix, 10);
  const std::vector<double> mask = random_vec(2 * n_pix, 11);

  std::vector<double> y;
  conv.forward(x, n_pix, y);
  std::vector<double> dx;
  conv.backward(mask, dx);

  // input grads
  for (std::size_t i = 0; i < x.size(); i += 3) {
    const double saved = x[i];
    x[i] = saved + kEps;
    conv.forward(x, n_pix, y);
    const double lp = weighted_sum(y, mask);
    x[i] = saved - kEps;
    conv.forward(x, n_pix, y);
    const double lm = weighted_sum(y, mask);
    x[i] = saved;
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * kEps), 1e-6);
  }
  // weight grads
  for (std::size_t wi = 0; wi < conv.weight().size(); ++wi) {
    const double saved = conv.weight().value[wi];
    conv.weight().value[wi] = saved + kEps;
    conv.forward(x, n_pix, y);
    const double lp = weighted_sum(y, mask);
    conv.weight().value[wi] = saved - kEps;
    conv.forward(x, n_pix, y);
    const double lm = weighted_sum(y, mask);
    conv.weight().value[wi] = saved;
    EXPECT_NEAR(conv.weight().grad[wi], (lp - lm) / (2 * kEps), 1e-6);
  }
}

// ---------------- GELU ----------------

TEST(Gelu, KnownValues) {
  Gelu g;
  std::vector<double> y;
  g.forward({0.0, 100.0, -100.0}, y);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 100.0, 1e-9);
  EXPECT_NEAR(y[2], 0.0, 1e-9);
}

TEST(Gelu, GradientMatchesFiniteDifference) {
  Gelu g;
  std::vector<double> x = random_vec(20, 20);
  const std::vector<double> mask = random_vec(20, 21);
  std::vector<double> y, dx;
  g.forward(x, y);
  g.backward(mask, dx);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double saved = x[i];
    x[i] = saved + kEps;
    g.forward(x, y);
    const double lp = weighted_sum(y, mask);
    x[i] = saved - kEps;
    g.forward(x, y);
    const double lm = weighted_sum(y, mask);
    x[i] = saved;
    // Restore cache for next iteration.
    g.forward(x, y);
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * kEps), 1e-6);
  }
}

// ---------------- SpectralConv2d ----------------

TEST(SpectralConv, OutputIsBandLimited) {
  Rng rng(3);
  SpectralConv2d spec(1, 1, 2, rng);
  const int h = 16;
  std::vector<double> x = random_vec(h * h, 30);
  std::vector<double> y;
  spec.forward(x, h, h, y);
  // The output's spectrum must vanish outside the kept modes.
  std::vector<std::complex<double>> yf(h * h);
  for (int i = 0; i < h * h; ++i) yf[i] = y[i];
  ::xplace::fft::fft2(yf.data(), h, h);
  // Re(ifft2) mirrors kept content to conjugate frequencies, so the output
  // spectrum lives where both |u| and |v| (circular) are within the modes.
  for (int u = 0; u < h; ++u) {
    for (int v = 0; v < h; ++v) {
      const bool kept_u = std::min(u, h - u) <= 2;
      const bool kept_v = std::min(v, h - v) <= 2;
      if (!kept_u || !kept_v) {
        EXPECT_LT(std::abs(yf[u * h + v]), 1e-9) << u << "," << v;
      }
    }
  }
}

TEST(SpectralConv, GradientsMatchFiniteDifference) {
  Rng rng(4);
  SpectralConv2d spec(2, 2, 2, rng);
  const int h = 8;
  const std::size_t n = static_cast<std::size_t>(h) * h;
  std::vector<double> x = random_vec(2 * n, 40);
  const std::vector<double> mask = random_vec(2 * n, 41);

  std::vector<double> y, dx;
  spec.forward(x, h, h, y);
  spec.backward(mask, dx);

  // input grads (sampled)
  for (std::size_t i = 0; i < x.size(); i += 17) {
    const double saved = x[i];
    x[i] = saved + kEps;
    spec.forward(x, h, h, y);
    const double lp = weighted_sum(y, mask);
    x[i] = saved - kEps;
    spec.forward(x, h, h, y);
    const double lm = weighted_sum(y, mask);
    x[i] = saved;
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * kEps), 1e-5) << "input " << i;
  }
  // weight grads (sampled; re and im parts)
  spec.forward(x, h, h, y);
  for (std::size_t wi = 0; wi < spec.weight().size(); wi += 13) {
    const double saved = spec.weight().value[wi];
    spec.weight().value[wi] = saved + kEps;
    spec.forward(x, h, h, y);
    const double lp = weighted_sum(y, mask);
    spec.weight().value[wi] = saved - kEps;
    spec.forward(x, h, h, y);
    const double lm = weighted_sum(y, mask);
    spec.weight().value[wi] = saved;
    EXPECT_NEAR(spec.weight().grad[wi], (lp - lm) / (2 * kEps), 1e-5)
        << "weight " << wi;
  }
}

// ---------------- FieldNet ----------------

TEST(FieldNet, ParameterCountInPaperClass) {
  FieldNet net;  // default config: width 20, modes 8, 4 layers
  // The paper reports 471k; our configuration lands in the same class.
  EXPECT_GT(net.num_params(), 350000u);
  EXPECT_LT(net.num_params(), 500000u);
}

TEST(FieldNet, EndToEndGradientCheck) {
  FieldNetConfig cfg;
  cfg.width = 4;
  cfg.modes = 2;
  cfg.layers = 2;
  cfg.proj_hidden = 8;
  FieldNet net(cfg);
  const int h = 8;
  const std::size_t n = static_cast<std::size_t>(h) * h;
  std::vector<double> density = random_vec(n, 50, 0.5);
  for (auto& d : density) d = std::fabs(d);
  const std::vector<double> input = FieldNet::make_input(density, h, h);
  std::vector<double> label = random_vec(n, 51);

  std::vector<double> grad;
  const std::vector<double> pred = net.forward(input, h, h);
  relative_l2(pred, label, grad);
  net.zero_grad();
  net.backward(grad);

  // Check a few parameters from each tensor against finite differences.
  auto params = net.parameters();
  for (Parameter* p : params) {
    for (std::size_t k : {std::size_t{0}, p->size() / 2}) {
      if (k >= p->size()) continue;
      const double saved = p->value[k];
      std::vector<double> g_unused;
      p->value[k] = saved + kEps;
      const double lp = relative_l2(net.forward(input, h, h), label, g_unused);
      p->value[k] = saved - kEps;
      const double lm = relative_l2(net.forward(input, h, h), label, g_unused);
      p->value[k] = saved;
      EXPECT_NEAR(p->grad[k], (lp - lm) / (2 * kEps), 2e-5);
    }
  }
}

TEST(FieldNet, TrainingReducesLoss) {
  FieldNetConfig cfg;
  cfg.width = 8;
  cfg.modes = 4;
  cfg.layers = 2;
  cfg.proj_hidden = 16;
  FieldNet net(cfg);
  Adam opt(net.parameters(), 3e-3);

  const int grid = 16;
  auto data = make_field_dataset(grid, 6, 77);
  std::vector<double> grad;
  double first = 0.0, last = 0.0;
  const int steps = 60;
  for (int step = 0; step < steps; ++step) {
    const FieldSample& s = data[step % data.size()];
    const auto input = FieldNet::make_input(s.density, grid, grid);
    const auto& pred = net.forward(input, grid, grid);
    const double loss = relative_l2(pred, s.field_x, grad);
    if (step == 0) first = loss;
    last = loss;
    net.zero_grad();
    net.backward(grad);
    opt.step();
  }
  EXPECT_LT(last, 0.75 * first) << "first " << first << " last " << last;
}

TEST(FieldNet, ResolutionTransfer) {
  // A model accepts a different (power-of-two) resolution than any it was
  // constructed for — the resolution-independence property of Section 3.3.
  FieldNetConfig cfg;
  cfg.width = 4;
  cfg.modes = 2;
  cfg.layers = 1;
  cfg.proj_hidden = 8;
  FieldNet net(cfg);
  const FieldSample a = make_field_sample(16, 5);
  const FieldSample b = make_field_sample(32, 5);
  EXPECT_EQ(net.predict(a.density, 16, 16).size(), 256u);
  EXPECT_EQ(net.predict(b.density, 32, 32).size(), 1024u);
}

TEST(FieldNet, SaveLoadRoundTrip) {
  FieldNetConfig cfg;
  cfg.width = 4;
  cfg.modes = 2;
  cfg.layers = 1;
  cfg.proj_hidden = 8;
  cfg.seed = 123;
  FieldNet net(cfg);
  const FieldSample s = make_field_sample(16, 9);
  const auto pred1 = net.predict(s.density, 16, 16);
  const std::string path = testing::TempDir() + "/fieldnet.bin";
  net.save(path);

  FieldNetConfig cfg2 = cfg;
  cfg2.seed = 999;  // different init, overwritten by load
  FieldNet net2(cfg2);
  net2.load(path);
  const auto pred2 = net2.predict(s.density, 16, 16);
  ASSERT_EQ(pred1.size(), pred2.size());
  for (std::size_t i = 0; i < pred1.size(); ++i) {
    EXPECT_DOUBLE_EQ(pred1[i], pred2[i]);
  }
}

TEST(FieldNet, LoadRejectsConfigMismatch) {
  FieldNetConfig small;
  small.width = 4;
  small.modes = 2;
  small.layers = 1;
  small.proj_hidden = 8;
  FieldNet net(small);
  const std::string path = testing::TempDir() + "/fieldnet2.bin";
  net.save(path);
  FieldNetConfig other = small;
  other.width = 6;
  FieldNet net2(other);
  EXPECT_THROW(net2.load(path), std::runtime_error);
}

// ---------------- data + guidance ----------------

TEST(Data, SamplesAreDeterministicAndNormalized) {
  const FieldSample a = make_field_sample(16, 42);
  const FieldSample b = make_field_sample(16, 42);
  EXPECT_EQ(a.density, b.density);
  EXPECT_EQ(a.field_x, b.field_x);
  double rms = 0.0;
  for (double v : a.field_x) rms += v * v;
  rms = std::sqrt(rms / a.field_x.size());
  EXPECT_NEAR(rms, 1.0, 1e-9);
  for (double v : a.density) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 2.0);
  }
}

TEST(Data, LabelMatchesSolver) {
  const FieldSample s = make_field_sample(16, 43);
  ops::PoissonSolver solver(16, 1.0, 1.0);
  solver.solve(s.density.data(), false);
  for (std::size_t i = 0; i < s.field_x.size(); i += 7) {
    EXPECT_NEAR(s.field_x[i] * s.label_rms, solver.ex()[i], 1e-9);
  }
}

TEST(Guidance, SigmaShapeMatchesPaperDescription) {
  // High early (NN dominates), decayed by ω ≈ 0.3.
  EXPECT_GT(sigma_of_omega(0.0), 0.85);
  EXPECT_GT(sigma_of_omega(0.05), 0.7);
  EXPECT_LT(sigma_of_omega(0.3), 0.05);
  EXPECT_LT(sigma_of_omega(1.0), 1e-6);
  // Monotone decreasing.
  double prev = 2.0;
  for (double w = 0.0; w <= 1.0; w += 0.05) {
    const double s = sigma_of_omega(w);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(Guidance, BlendsTowardPredictionEarly) {
  FieldNetConfig cfg;
  cfg.width = 4;
  cfg.modes = 2;
  cfg.layers = 1;
  cfg.proj_hidden = 8;
  FieldNet net(cfg);
  FnoGuidance guide(&net);
  const int m = 16;
  const FieldSample s = make_field_sample(m, 11);
  ops::PoissonSolver solver(m, 1.0, 1.0);
  solver.solve(s.density.data(), false);
  std::vector<double> ex = solver.ex(), ey = solver.ey();
  const std::vector<double> ex0 = ex;
  guide.blend(s.density.data(), m, 1.0, 1.0, /*omega=*/0.0, 0.0, ex, ey);
  EXPECT_EQ(guide.evaluations(), 1);
  // Field changed (σ≈0.9 pulls strongly toward the prediction).
  double diff = 0.0, base = 0.0;
  for (std::size_t i = 0; i < ex.size(); ++i) {
    diff += std::fabs(ex[i] - ex0[i]);
    base += std::fabs(ex0[i]);
  }
  EXPECT_GT(diff, 0.1 * base);
}

TEST(Guidance, NoOpLateInPlacement) {
  FieldNetConfig cfg;
  cfg.width = 4;
  cfg.modes = 2;
  cfg.layers = 1;
  cfg.proj_hidden = 8;
  FieldNet net(cfg);
  FnoGuidance guide(&net);
  const int m = 16;
  const FieldSample s = make_field_sample(m, 12);
  std::vector<double> ex(m * m, 1.0), ey(m * m, -1.0);
  const auto ex0 = ex;
  guide.blend(s.density.data(), m, 1.0, 1.0, /*omega=*/0.9, 0.0, ex, ey);
  EXPECT_EQ(guide.evaluations(), 0);  // σ below cutoff: no evaluation
  EXPECT_EQ(ex, ex0);
}

TEST(Guidance, PredictEveryCachesEvaluations) {
  FieldNetConfig cfg;
  cfg.width = 4;
  cfg.modes = 2;
  cfg.layers = 1;
  cfg.proj_hidden = 8;
  FieldNet net(cfg);
  FnoGuidance guide(&net, /*predict_every=*/3);
  const int m = 16;
  const FieldSample s = make_field_sample(m, 13);
  std::vector<double> ex(m * m, 1.0), ey(m * m, 1.0);
  for (int i = 0; i < 6; ++i) {
    guide.blend(s.density.data(), m, 1.0, 1.0, 0.0, 0.0, ex, ey);
  }
  EXPECT_EQ(guide.evaluations(), 2);
}

}  // namespace
}  // namespace xplace::nn
