// Run-guardian tests: fault-plan grammar, sentinel recovery under injected
// faults, retry-budget exhaustion, the divergence best-snapshot commit, the
// checkpoint binary format, and bit-for-bit --resume.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/checkpoint.h"
#include "core/guardian.h"
#include "core/placer.h"
#include "io/checkpoint_io.h"
#include "io/generator.h"

namespace xplace::core {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("xplace_guardian_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

db::Database gp_design(std::size_t cells = 1200, std::uint64_t seed = 5) {
  io::GeneratorSpec spec;
  spec.name = "guardian_unit";
  spec.num_cells = cells;
  spec.num_nets = cells + cells / 20;
  spec.num_macros = 3;
  spec.num_io_pads = 16;
  spec.seed = seed;
  return io::generate(spec);
}

PlacerConfig fast_cfg(PlacerConfig cfg = PlacerConfig::xplace()) {
  cfg.grid_dim = 64;
  cfg.max_iters = 700;
  return cfg;
}

// ---------------- fault-plan grammar ----------------

TEST(FaultPlan, ParsesSingleEvent) {
  const FaultPlan p = FaultPlan::parse("nonfinite_grad@iter:120");
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].kind, FaultEvent::Kind::kNonfiniteGrad);
  EXPECT_EQ(p.events[0].iter, 120);
}

TEST(FaultPlan, ParsesMultipleEvents) {
  const FaultPlan p =
      FaultPlan::parse("spike@iter:40,alloc_fail@iter:0,nonfinite_grad@iter:7");
  ASSERT_EQ(p.events.size(), 3u);
  EXPECT_EQ(p.events[0].kind, FaultEvent::Kind::kSpike);
  EXPECT_EQ(p.events[1].kind, FaultEvent::Kind::kAllocFail);
  EXPECT_EQ(p.events[1].iter, 0);
  EXPECT_EQ(p.events[2].iter, 7);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, RejectsBadSpecs) {
  EXPECT_THROW(FaultPlan::parse("nonfinite_grad"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("meteor_strike@iter:3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spike@iter:abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spike@iter:-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("spike@iter:12x"), std::invalid_argument);
}

TEST(FaultPlan, FromEnvReadsXplaceFault) {
  ::setenv("XPLACE_FAULT", "spike@iter:33", 1);
  const FaultPlan p = FaultPlan::from_env();
  ::unsetenv("XPLACE_FAULT");
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].kind, FaultEvent::Kind::kSpike);
  EXPECT_EQ(p.events[0].iter, 33);
  EXPECT_TRUE(FaultPlan::from_env().empty());  // unset again
}

// ---------------- sentinel classification (unit level) ----------------

TEST(Guardian, InspectClassifiesHealth) {
  db::Database db = gp_design(200, 9);
  PlacerConfig cfg = fast_cfg();
  Guardian guard(cfg, db);

  std::vector<float> gx(64, 0.5f), gy(64, -0.5f);
  EXPECT_EQ(guard.inspect(gx.data(), gy.data(), 64, 1e6), SentinelHealth::kOk);

  // Spike: magnitude leaps far above the EMA established by the OK scan.
  std::vector<float> sx(64, 1e6f), sy(64, 1e6f);
  EXPECT_EQ(guard.inspect(sx.data(), sy.data(), 64, 1e6),
            SentinelHealth::kSpike);

  gx[13] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(guard.inspect(gx.data(), gy.data(), 64, 1e6),
            SentinelHealth::kNonFinite);

  // Non-finite HPWL trips even with clean gradients.
  gx[13] = 0.0f;
  EXPECT_EQ(guard.inspect(gx.data(), gy.data(), 64,
                          std::numeric_limits<double>::infinity()),
            SentinelHealth::kNonFinite);
  EXPECT_EQ(guard.sentinel_trips(), 3);
}

// ---------------- end-to-end fault recovery ----------------

// Shared baseline so the recovery tests compare against one fault-free run.
double fault_free_hpwl() {
  static const double hpwl = [] {
    db::Database db = gp_design();
    GlobalPlacer placer(db, fast_cfg());
    return placer.run().hpwl;
  }();
  return hpwl;
}

TEST(GuardianRecovery, NonfiniteGradFault) {
  db::Database db = gp_design();
  GlobalPlacer placer(db, fast_cfg());
  placer.guardian().set_fault_plan(FaultPlan::parse("nonfinite_grad@iter:120"));
  const GlobalPlaceResult res = placer.run();

  EXPECT_EQ(placer.guardian().faults_injected(), 1);
  EXPECT_GE(res.sentinel_trips, 1);
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_FALSE(res.diverged);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.stop_reason, StopReason::kConverged);
  EXPECT_TRUE(std::isfinite(res.hpwl));
  // Acceptance: recovered run finishes within 5% of the fault-free HPWL.
  EXPECT_NEAR(res.hpwl, fault_free_hpwl(), 0.05 * fault_free_hpwl());
}

TEST(GuardianRecovery, SpikeFault) {
  db::Database db = gp_design();
  GlobalPlacer placer(db, fast_cfg());
  placer.guardian().set_fault_plan(FaultPlan::parse("spike@iter:120"));
  const GlobalPlaceResult res = placer.run();

  EXPECT_GE(res.sentinel_trips, 1);
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.hpwl, fault_free_hpwl(), 0.05 * fault_free_hpwl());
}

TEST(GuardianRecovery, AllocFailKeepsPreviousSnapshotAndFinishes) {
  db::Database db = gp_design();
  GlobalPlacer placer(db, fast_cfg());
  placer.guardian().set_fault_plan(FaultPlan::parse("alloc_fail@iter:0"));
  const GlobalPlaceResult res = placer.run();

  EXPECT_EQ(placer.guardian().faults_injected(), 1);
  EXPECT_EQ(res.rollbacks, 0);  // alloc failure is absorbed, not a trip
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(placer.guardian().has_snapshot());  // a later capture succeeded
  EXPECT_NEAR(res.hpwl, fault_free_hpwl(), 0.05 * fault_free_hpwl());
}

TEST(GuardianRecovery, RetryBudgetExhaustionStopsGracefully) {
  db::Database db = gp_design();
  PlacerConfig cfg = fast_cfg();
  cfg.guardian_max_rollbacks = 2;
  GlobalPlacer placer(db, cfg);
  // More consecutive faults than the budget allows.
  placer.guardian().set_fault_plan(FaultPlan::parse(
      "nonfinite_grad@iter:60,nonfinite_grad@iter:61,nonfinite_grad@iter:62,"
      "nonfinite_grad@iter:63"));
  const GlobalPlaceResult res = placer.run();

  EXPECT_TRUE(res.diverged);
  EXPECT_EQ(res.stop_reason, StopReason::kDiverged);
  EXPECT_EQ(res.rollbacks, 3);  // budget 2 → third rollback call reports false
  EXPECT_FALSE(res.converged);
  // Graceful stop: committed positions are the best-known iterate, finite.
  EXPECT_TRUE(std::isfinite(res.hpwl));
  EXPECT_GT(res.hpwl, 0.0);
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    ASSERT_TRUE(std::isfinite(db.x(c)) && std::isfinite(db.y(c))) << c;
  }
}

// Satellite (a) regression: a divergent stop must commit the best-HPWL
// snapshot, not the diverged iterate, and must report diverged = true.
TEST(GuardianRecovery, DivergentStopCommitsBestSnapshot) {
  db::Database db = gp_design();
  PlacerConfig cfg = fast_cfg();
  // HPWL grows as the placement spreads from its center init, so a ratio
  // this tight trips the divergence check right after the grace period.
  cfg.divergence_hpwl_ratio = 1.01;
  cfg.guardian_max_rollbacks = 0;  // first trip exhausts the budget
  GlobalPlacer placer(db, cfg);
  const GlobalPlaceResult res = placer.run();

  EXPECT_TRUE(res.diverged);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.stop_reason, StopReason::kDiverged);
  EXPECT_GE(res.rollbacks, 1);
  ASSERT_TRUE(placer.guardian().has_snapshot());
  // The committed database is the snapshot's iterate: its exact HPWL must be
  // far below the diverged trajectory's and finite.
  EXPECT_TRUE(std::isfinite(res.hpwl));
  EXPECT_GT(res.hpwl, 0.0);
}

TEST(GuardianRecovery, EnvVarArmsInjection) {
  ::setenv("XPLACE_FAULT", "spike@iter:120", 1);
  db::Database db = gp_design();
  GlobalPlacer placer(db, fast_cfg());
  ::unsetenv("XPLACE_FAULT");
  const GlobalPlaceResult res = placer.run();
  EXPECT_EQ(placer.guardian().faults_injected(), 1);
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_TRUE(res.converged);
}

TEST(Guardian, DisabledGuardianStillStopsOnDivergence) {
  db::Database db = gp_design();
  PlacerConfig cfg = fast_cfg();
  cfg.guardian = false;
  cfg.divergence_hpwl_ratio = 1.01;
  GlobalPlacer placer(db, cfg);
  const GlobalPlaceResult res = placer.run();
  EXPECT_TRUE(res.diverged);
  EXPECT_EQ(res.rollbacks, 0);
}

// ---------------- checkpoint format ----------------

RunCheckpoint sample_checkpoint() {
  RunCheckpoint ck;
  ck.design = "unit";
  ck.n_total = 5;
  ck.n_movable = 3;
  ck.optimizer_kind = 0;
  ck.next_iter = 42;
  ck.gamma = 3.25;
  ck.overflow = 0.375;
  ck.best_hpwl = 123456.5;
  ck.hpwl = 123999.25;
  ck.optimizer.put_array("u_x", {1.0f, 2.0f, 3.0f, 4.0f, 5.0f});
  ck.optimizer.put_scalar("a_k", 1.625);
  ck.scheduler.put_scalar("lambda", 2e-4);
  ck.engine.put_array("dgrad_x", {0.5f, -0.5f});
  return ck;
}

TEST(CheckpointIO, RoundTripPreservesEverything) {
  TempDir tmp;
  const std::string path = tmp.path() + "/run.xpck";
  const RunCheckpoint ck = sample_checkpoint();
  io::write_checkpoint(ck, path);
  const RunCheckpoint back = io::read_checkpoint(path);

  EXPECT_EQ(back.design, "unit");
  EXPECT_EQ(back.n_total, 5u);
  EXPECT_EQ(back.n_movable, 3u);
  EXPECT_EQ(back.next_iter, 42);
  EXPECT_DOUBLE_EQ(back.gamma, 3.25);
  EXPECT_DOUBLE_EQ(back.overflow, 0.375);
  EXPECT_DOUBLE_EQ(back.best_hpwl, 123456.5);
  EXPECT_DOUBLE_EQ(back.hpwl, 123999.25);
  EXPECT_EQ(back.optimizer.array("u_x"),
            (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f, 5.0f}));
  EXPECT_DOUBLE_EQ(back.optimizer.scalar("a_k"), 1.625);
  EXPECT_DOUBLE_EQ(back.scheduler.scalar("lambda"), 2e-4);
  EXPECT_EQ(back.engine.array("dgrad_x"), (std::vector<float>{0.5f, -0.5f}));
  EXPECT_THROW(back.optimizer.array("missing"), std::runtime_error);
  EXPECT_THROW(back.optimizer.scalar("missing"), std::runtime_error);
}

TEST(CheckpointIO, MissingFileThrows) {
  EXPECT_THROW(io::read_checkpoint("/nonexistent/dir/run.xpck"),
               std::runtime_error);
}

TEST(CheckpointIO, TruncatedFileThrows) {
  TempDir tmp;
  const std::string path = tmp.path() + "/run.xpck";
  io::write_checkpoint(sample_checkpoint(), path);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  try {
    io::read_checkpoint(path);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST(CheckpointIO, BadMagicThrows) {
  TempDir tmp;
  const std::string path = tmp.path() + "/run.xpck";
  std::ofstream(path, std::ios::binary) << "definitely not a checkpoint file";
  try {
    io::read_checkpoint(path);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointIO, CorruptedPayloadFailsChecksum) {
  TempDir tmp;
  const std::string path = tmp.path() + "/run.xpck";
  io::write_checkpoint(sample_checkpoint(), path);
  // Flip one payload byte (past the header, before the trailing checksum).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24);
  char b = 0;
  f.seekg(24);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(24);
  f.write(&b, 1);
  f.close();
  try {
    io::read_checkpoint(path);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

// ---------------- resume (bit-for-bit) ----------------

TEST(Resume, KilledRunResumesBitForBit) {
  TempDir tmp;
  const std::string ck_path = tmp.path() + "/gp.xpck";

  // Uninterrupted reference: exactly 120 iterations (stop_overflow 0 keeps
  // the loop from converging early).
  PlacerConfig full = fast_cfg();
  full.max_iters = 120;
  full.stop_overflow = 0.0;
  db::Database db_a = gp_design();
  GlobalPlacer placer_a(db_a, full);
  const GlobalPlaceResult res_a = placer_a.run();
  ASSERT_EQ(res_a.iterations, 120);

  // "Killed" run: same config but stops at 60, checkpointing every 50 iters
  // (one checkpoint lands at next_iter = 50).
  PlacerConfig half = full;
  half.max_iters = 60;
  half.checkpoint_out = ck_path;
  half.checkpoint_period = 50;
  db::Database db_b = gp_design();
  GlobalPlacer placer_b(db_b, half);
  placer_b.run();
  ASSERT_TRUE(fs::exists(ck_path));

  // Restarted run: fresh database + --resume, same horizon as the reference.
  PlacerConfig resumed = full;
  resumed.resume_path = ck_path;
  db::Database db_c = gp_design();
  GlobalPlacer placer_c(db_c, resumed);
  const GlobalPlaceResult res_c = placer_c.run();

  EXPECT_EQ(res_c.iterations, 120);
  // Bit-for-bit: the resumed trajectory is the uninterrupted one.
  EXPECT_DOUBLE_EQ(res_c.hpwl, res_a.hpwl);
  EXPECT_DOUBLE_EQ(res_c.overflow, res_a.overflow);
  for (std::size_t c = 0; c < db_a.num_movable(); c += 37) {
    EXPECT_EQ(db_a.x(c), db_c.x(c)) << "cell " << c;
    EXPECT_EQ(db_a.y(c), db_c.y(c)) << "cell " << c;
  }
}

TEST(Resume, MismatchedDesignRejected) {
  TempDir tmp;
  const std::string ck_path = tmp.path() + "/gp.xpck";

  PlacerConfig cfg = fast_cfg();
  cfg.max_iters = 12;
  cfg.stop_overflow = 0.0;
  cfg.checkpoint_out = ck_path;
  cfg.checkpoint_period = 10;
  db::Database db_a = gp_design(1200, 5);
  GlobalPlacer placer_a(db_a, cfg);
  placer_a.run();
  ASSERT_TRUE(fs::exists(ck_path));

  PlacerConfig resumed = fast_cfg();
  resumed.resume_path = ck_path;
  db::Database db_b = gp_design(600, 5);  // different design size
  GlobalPlacer placer_b(db_b, resumed);
  EXPECT_THROW(placer_b.run(), std::runtime_error);
}

}  // namespace
}  // namespace xplace::core
