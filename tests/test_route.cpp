#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/placer.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "route/congestion.h"

namespace xplace::route {
namespace {

/// Two-cell design with one 2-pin net for exact demand accounting.
db::Database two_pin_design(double x0, double y0, double x1, double y1) {
  db::Database db;
  db.set_region({0, 0, 64, 64});
  const int a = db.add_cell("a", 1, 1, db::CellKind::kMovable);
  const int b = db.add_cell("b", 1, 1, db::CellKind::kMovable);
  const int n = db.add_net("n");
  db.add_pin(n, a, 0, 0);
  db.add_pin(n, b, 0, 0);
  db.finalize();
  db.set_position(a, x0, y0);
  db.set_position(b, x1, y1);
  return db;
}

TEST(Rudy, SingleNetDemandIntegratesToWirelength) {
  db::Database db = two_pin_design(8, 8, 40, 24);
  const int grid = 16;  // gcells of 4x4
  const auto demand = rudy_map(db, grid);
  // Σ demand · gcell_area = (w + h) of the bbox (RUDY integrates to HPWL).
  const double gw = 64.0 / grid;
  double total = std::accumulate(demand.begin(), demand.end(), 0.0) * gw * gw;
  EXPECT_NEAR(total, (40 - 8) + (24 - 8), 1.0);
}

TEST(Rudy, DemandConfinedToBbox) {
  db::Database db = two_pin_design(8, 8, 24, 24);
  const int grid = 16;
  const auto demand = rudy_map(db, grid);
  const double gw = 64.0 / grid;
  for (int ix = 0; ix < grid; ++ix) {
    for (int iy = 0; iy < grid; ++iy) {
      const double lo_x = ix * gw, lo_y = iy * gw;
      const bool inside = lo_x < 24.0 && lo_x + gw > 8.0 && lo_y < 24.0 &&
                          lo_y + gw > 8.0;
      if (!inside) {
        EXPECT_NEAR(demand[static_cast<std::size_t>(ix) * grid + iy], 0.0, 1e-12);
      }
    }
  }
}

TEST(Lshape, TwoPinNetDemandCountsGcells) {
  db::Database db = two_pin_design(10, 10, 50, 42);
  CongestionConfig cfg;
  cfg.grid = 8;  // 8x8 gcells of 8x8 units
  cfg.use_lshape = true;
  const CongestionResult res = estimate_congestion(db, cfg);
  // Each L route contributes 0.5 per crossed gcell: total H demand
  // = 2 rows × 0.5 × span_x_gcells, similarly V.
  const double span_x = std::floor(50 / 8.0) - std::floor(10 / 8.0) + 1;  // 6
  const double span_y = std::floor(42 / 8.0) - std::floor(10 / 8.0) + 1;  // 5
  const double total_h = std::accumulate(res.demand_h.begin(), res.demand_h.end(), 0.0);
  const double total_v = std::accumulate(res.demand_v.begin(), res.demand_v.end(), 0.0);
  EXPECT_NEAR(total_h, span_x, 1e-9);
  EXPECT_NEAR(total_v, span_y, 1e-9);
}

TEST(Congestion, ZeroOverflowWithAmpleCapacity) {
  db::Database db = two_pin_design(10, 10, 50, 42);
  CongestionConfig cfg;
  cfg.grid = 8;
  cfg.tracks_per_gcell = 100.0;
  const CongestionResult res = estimate_congestion(db, cfg);
  EXPECT_DOUBLE_EQ(res.total_overflow, 0.0);
  EXPECT_DOUBLE_EQ(res.top5_overflow, 0.0);
}

TEST(Congestion, OverflowGrowsAsCapacityShrinks) {
  io::GeneratorSpec spec;
  spec.name = "route_unit";
  spec.num_cells = 600;
  spec.num_nets = 650;
  spec.seed = 31;
  db::Database db = io::generate(spec);
  CongestionConfig tight, loose;
  tight.grid = loose.grid = 32;
  tight.tracks_per_gcell = 2.0;
  loose.tracks_per_gcell = 20.0;
  const CongestionResult r_tight = estimate_congestion(db, tight);
  const CongestionResult r_loose = estimate_congestion(db, loose);
  EXPECT_GT(r_tight.total_overflow, r_loose.total_overflow);
  EXPECT_GE(r_tight.top5_overflow, r_loose.top5_overflow);
}

TEST(Congestion, SpreadPlacementLessCongestedThanClumped) {
  io::GeneratorSpec spec;
  spec.name = "route_unit2";
  spec.num_cells = 800;
  spec.num_nets = 850;
  spec.seed = 37;
  db::Database spread_db = io::generate(spec);

  // Clumped copy: everything in one corner quarter.
  db::Database clumped_db = io::generate(spec);
  const auto& r = clumped_db.region();
  for (std::size_t c = 0; c < clumped_db.num_movable(); ++c) {
    clumped_db.set_position(c, r.lx + (clumped_db.x(c) - r.lx) * 0.25,
                            r.ly + (clumped_db.y(c) - r.ly) * 0.25);
  }
  CongestionConfig cfg;
  cfg.grid = 32;
  cfg.tracks_per_gcell = 6.0;
  const CongestionResult res_spread = estimate_congestion(spread_db, cfg);
  const CongestionResult res_clump = estimate_congestion(clumped_db, cfg);
  EXPECT_GT(res_clump.top5_utilization, res_spread.top5_utilization);
}

TEST(Congestion, SummaryIsPrintable) {
  db::Database db = two_pin_design(1, 1, 60, 60);
  const CongestionResult res = estimate_congestion(db);
  EXPECT_FALSE(res.summary().empty());
  EXPECT_EQ(res.grid, CongestionConfig{}.grid);
}

}  // namespace
}  // namespace xplace::route
