// Tests for the serving subsystem (DESIGN.md §11): JSON + line framing,
// protocol validation, the bounded priority queue, cooperative cancellation
// through the placer, the in-process PlacementServer (admission, cancel,
// deadline, determinism, concurrent soak), and the UDS daemon end to end.
//
// Determinism note: every job here pins an explicit thread count (the server
// default is 1), so the suite is insensitive to XPLACE_THREADS and stays
// bit-exact in the tier1-mt CI lane.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/placer.h"
#include "dp/detailed_placer.h"
#include "io/bookshelf.h"
#include "io/checkpoint_io.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "server/json.h"
#include "server/job_queue.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/uds.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/stop_token.h"

namespace xplace::server {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  const std::string doc =
      R"({"a":1,"b":-2.5,"s":"x\"y\\z","t":true,"n":null,"arr":[1,2,3],"o":{"k":"v"}})";
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(doc, &v, &error)) << error;
  EXPECT_EQ(v.get_number("a", 0), 1.0);
  EXPECT_EQ(v.get_number("b", 0), -2.5);
  EXPECT_EQ(v.get_string("s"), "x\"y\\z");
  EXPECT_TRUE(v.get_bool("t", false));
  EXPECT_TRUE(v.has("n"));
  // Dump → parse is stable.
  json::Value v2;
  ASSERT_TRUE(json::parse(v.dump(), &v2, &error)) << error;
  EXPECT_EQ(v.dump(), v2.dump());
}

TEST(Json, IntegersDumpExactly) {
  json::Object o;
  o.emplace_back("id", static_cast<std::uint64_t>(123456789));
  EXPECT_EQ(json::Value(std::move(o)).dump(), "{\"id\":123456789}");
}

TEST(Json, MalformedInputsAreRejectedWithPosition) {
  const char* bad[] = {"",      "{",        "[1,2",    "{\"a\":}",
                       "tru",   "\"unterminated", "{\"a\":1,}", "01",
                       "1 2",   "{\"a\" 1}"};
  for (const char* doc : bad) {
    json::Value v;
    std::string error;
    EXPECT_FALSE(json::parse(doc, &v, &error)) << doc;
    EXPECT_NE(error.find("offset"), std::string::npos) << doc << ": " << error;
  }
}

TEST(Json, UnicodeEscapes) {
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(R"({"s":"Aé😀"})", &v, &error))
      << error;
  EXPECT_EQ(v.get_string("s"), "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, DepthCapStopsRecursion) {
  std::string deep(100, '[');
  deep.append(100, ']');
  json::Value v;
  std::string error;
  EXPECT_FALSE(json::parse(deep, &v, &error));
}

// ---------------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------------

TEST(LineReader, SplitsPartialAndBatchedFeeds) {
  LineReader r;
  std::string line;
  r.feed("hel", 3);
  EXPECT_EQ(r.next(&line), LineReader::Pop::kNeedMore);
  r.feed("lo\nwor", 6);
  ASSERT_EQ(r.next(&line), LineReader::Pop::kLine);
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(r.next(&line), LineReader::Pop::kNeedMore);
  r.feed("ld\r\nthird\n", 10);
  ASSERT_EQ(r.next(&line), LineReader::Pop::kLine);
  EXPECT_EQ(line, "world");  // CRLF tolerated
  ASSERT_EQ(r.next(&line), LineReader::Pop::kLine);
  EXPECT_EQ(line, "third");
}

TEST(LineReader, OversizedLineInOneFeedResyncs) {
  LineReader r;
  std::string payload(kMaxLineBytes + 10, 'x');
  payload += "\nnext\n";
  r.feed(payload.data(), payload.size());
  std::string line;
  EXPECT_EQ(r.next(&line), LineReader::Pop::kOversized);
  ASSERT_EQ(r.next(&line), LineReader::Pop::kLine);
  EXPECT_EQ(line, "next");
}

TEST(LineReader, OversizedLineAcrossFeedsReportsOnceAndResyncs) {
  LineReader r;
  const std::string chunk(kMaxLineBytes, 'y');  // no newline yet
  std::string line;
  r.feed(chunk.data(), chunk.size());
  r.feed(chunk.data(), chunk.size());
  EXPECT_EQ(r.next(&line), LineReader::Pop::kOversized);
  r.feed(chunk.data(), chunk.size());  // still the same oversized line
  EXPECT_EQ(r.next(&line), LineReader::Pop::kNeedMore);
  r.feed("tail\nok\n", 8);  // newline ends the monster; "ok" survives
  ASSERT_EQ(r.next(&line), LineReader::Pop::kLine);
  EXPECT_EQ(line, "ok");
}

// ---------------------------------------------------------------------------
// Protocol requests
// ---------------------------------------------------------------------------

TEST(Protocol, SubmitRoundTripsThroughBuildAndParse) {
  Request req;
  req.cmd = Command::kSubmit;
  req.spec.demo_cells = 1234;
  req.spec.demo_seed = 7;
  req.spec.max_iters = 321;
  req.spec.grid = 64;
  req.spec.threads = 2;
  req.spec.full_flow = false;
  req.spec.priority = 5;
  req.spec.deadline_s = 12.5;
  req.spec.label = "soak_a";

  Request out;
  std::string error;
  ASSERT_TRUE(parse_request(build_request(req), &out, &error)) << error;
  EXPECT_EQ(out.cmd, Command::kSubmit);
  EXPECT_EQ(out.spec.demo_cells, 1234);
  EXPECT_EQ(out.spec.demo_seed, 7u);
  EXPECT_EQ(out.spec.max_iters, 321);
  EXPECT_EQ(out.spec.grid, 64);
  EXPECT_EQ(out.spec.threads, 2);
  EXPECT_FALSE(out.spec.full_flow);
  EXPECT_EQ(out.spec.priority, 5);
  EXPECT_EQ(out.spec.deadline_s, 12.5);
  EXPECT_EQ(out.spec.label, "soak_a");
}

TEST(Protocol, EveryCommandRoundTrips) {
  for (const Command cmd :
       {Command::kStatus, Command::kCancel, Command::kResult, Command::kEvents,
        Command::kStats, Command::kShutdown}) {
    Request req;
    req.cmd = cmd;
    req.id = 42;
    req.from_seq = 17;
    req.wait = true;
    req.timeout_s = 7.5;
    req.drain = false;
    Request out;
    std::string error;
    ASSERT_TRUE(parse_request(build_request(req), &out, &error))
        << to_string(cmd) << ": " << error;
    EXPECT_EQ(out.cmd, cmd);
    if (cmd == Command::kEvents) {
      EXPECT_EQ(out.from_seq, 17u);
      // Regression: events requests must carry their timeout budget — the
      // daemon otherwise streams on its 60s default.
      EXPECT_EQ(out.timeout_s, 7.5);
    }
    if (cmd == Command::kResult) {
      EXPECT_TRUE(out.wait);
      EXPECT_EQ(out.timeout_s, 7.5);
    }
  }
}

TEST(Protocol, RejectsBadRequests) {
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request("not json", &req, &error));
  EXPECT_NE(error.find("malformed JSON"), std::string::npos);
  EXPECT_FALSE(parse_request("[1,2]", &req, &error));
  EXPECT_FALSE(parse_request("{\"cmd\":\"fly\"}", &req, &error));
  EXPECT_NE(error.find("unknown command"), std::string::npos);
  EXPECT_FALSE(parse_request("{\"cmd\":\"cancel\"}", &req, &error));
  EXPECT_NE(error.find("requires \"id\""), std::string::npos);
  EXPECT_FALSE(parse_request("{\"cmd\":\"status\",\"id\":1.5}", &req, &error));
  EXPECT_FALSE(parse_request("{\"cmd\":\"status\",\"id\":-3}", &req, &error));
  EXPECT_FALSE(parse_request("{\"cmd\":\"submit\"}", &req, &error));
  EXPECT_NE(error.find("requires"), std::string::npos);
  EXPECT_FALSE(parse_request(
      "{\"cmd\":\"submit\",\"aux\":\"a.aux\",\"demo_cells\":10}", &req,
      &error));
  EXPECT_FALSE(parse_request(
      "{\"cmd\":\"submit\",\"demo_cells\":10,\"max_iters\":0}", &req, &error));
  EXPECT_FALSE(parse_request(
      "{\"cmd\":\"submit\",\"demo_cells\":10,\"deadline_s\":-1}", &req,
      &error));
}

// ---------------------------------------------------------------------------
// StopToken
// ---------------------------------------------------------------------------

TEST(StopToken, CancelAndDeadline) {
  StopToken t;
  EXPECT_EQ(t.check(), StopCause::kNone);
  EXPECT_EQ(poll_stop(nullptr), StopCause::kNone);

  t.set_timeout(3600.0);
  EXPECT_EQ(t.check(), StopCause::kNone);  // far future
  t.request_cancel();
  EXPECT_EQ(t.check(), StopCause::kCancelled);  // cancel wins over deadline

  StopToken d;
  d.set_timeout(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(d.check(), StopCause::kDeadline);
  EXPECT_EQ(d.check(), StopCause::kDeadline);  // fired tokens stay fired
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(JobQueue, OrdersByPriorityThenDeadlineThenFifo) {
  JobQueue q(16);
  auto push = [&](std::uint64_t id, int prio, double deadline) {
    QueuedJob j;
    j.id = id;
    j.priority = prio;
    j.deadline = deadline;
    ASSERT_TRUE(q.push(j));
  };
  push(1, 0, QueuedJob::kNoDeadline);
  push(2, 5, QueuedJob::kNoDeadline);
  push(3, 5, 100.0);  // same priority, earlier deadline → before 2
  push(4, 0, QueuedJob::kNoDeadline);  // FIFO after 1

  QueuedJob out;
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 1u);
  ASSERT_TRUE(q.pop(&out));
  EXPECT_EQ(out.id, 4u);
}

TEST(JobQueue, RejectsWhenFullAndSupportsRemove) {
  JobQueue q(2);
  QueuedJob j;
  j.id = 1;
  EXPECT_TRUE(q.push(j));
  j.id = 2;
  EXPECT_TRUE(q.push(j));
  j.id = 3;
  EXPECT_FALSE(q.push(j));  // reject-on-full backpressure
  EXPECT_TRUE(q.remove(2));
  EXPECT_FALSE(q.remove(2));  // already gone
  j.id = 3;
  EXPECT_TRUE(q.push(j));  // slot freed
  EXPECT_EQ(q.size(), 2u);
}

TEST(JobQueue, CloseDrainsThenUnblocksPoppers) {
  JobQueue q(4);
  QueuedJob j;
  j.id = 9;
  ASSERT_TRUE(q.push(j));
  q.close();
  EXPECT_FALSE(q.push(j));  // closed
  QueuedJob out;
  EXPECT_TRUE(q.pop(&out));  // queued entries still drain
  EXPECT_EQ(out.id, 9u);
  EXPECT_FALSE(q.pop(&out));  // closed and empty → popper exits
}

// ---------------------------------------------------------------------------
// Cooperative stop through the placer (satellite regression)
// ---------------------------------------------------------------------------

db::Database small_design(std::size_t cells, std::uint64_t seed = 5) {
  io::GeneratorSpec spec;
  spec.name = "srv";
  spec.num_cells = cells;
  spec.num_nets = cells + cells / 20;
  spec.seed = seed;
  return io::generate(spec);
}

core::PlacerConfig fast_cfg(int max_iters) {
  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 64;
  cfg.max_iters = max_iters;
  cfg.threads = 1;
  return cfg;
}

TEST(PlacerStop, CancelMidRunCommitsGuardianBestSnapshot) {
  db::Database db = small_design(600);
  core::GlobalPlacer placer(db, fast_cfg(1000));
  StopToken token;
  placer.set_stop_token(&token);
  // Cancel from the iteration stream itself: fires after enough iterations
  // for the guardian to have captured best-snapshots.
  placer.recorder().set_observer([&](const core::IterationRecord& r) {
    if (r.iter == 80) token.request_cancel();
  });
  const core::GlobalPlaceResult res = placer.run();

  EXPECT_EQ(res.stop_reason, core::StopReason::kCancelled);
  EXPECT_FALSE(res.converged);
  EXPECT_LT(res.iterations, 1000);
  // The cancelled run still committed a usable placement: the guardian's
  // best snapshot, finite everywhere.
  EXPECT_TRUE(placer.guardian().has_snapshot());
  EXPECT_TRUE(std::isfinite(res.hpwl));
  EXPECT_GT(res.hpwl, 0.0);
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    ASSERT_TRUE(std::isfinite(db.x(c)) && std::isfinite(db.y(c))) << c;
  }
}

TEST(PlacerStop, DeadlineStopsTheLoop) {
  // Large enough that the run cannot converge before the deadline fires.
  db::Database db = small_design(2000);
  core::GlobalPlacer placer(db, fast_cfg(100000));
  StopToken token;
  token.set_timeout(0.1);
  placer.set_stop_token(&token);
  const core::GlobalPlaceResult res = placer.run();
  EXPECT_EQ(res.stop_reason, core::StopReason::kDeadline);
  EXPECT_LT(res.iterations, 100000);
  // The timed-out run still wrote a usable placement back into the database.
  EXPECT_TRUE(std::isfinite(res.hpwl));
  EXPECT_GT(res.hpwl, 0.0);
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    ASSERT_TRUE(std::isfinite(db.x(c)) && std::isfinite(db.y(c))) << c;
  }
}

TEST(PlacerStop, DetailedPlaceHonoursPrefiredToken) {
  db::Database db = small_design(400);
  core::GlobalPlacer placer(db, fast_cfg(120));
  (void)placer.run();
  lg::abacus_legalize(db);
  const double legal_hpwl = db.hpwl();

  StopToken token;
  token.request_cancel();
  dp::DetailedPlaceConfig dcfg;
  dcfg.stop = &token;
  const dp::DetailedPlaceResult res = dp::detailed_place(db, dcfg);
  // Pre-fired token: DP exits at the first pass boundary without moving
  // anything, and the placement stays exactly the legal input.
  EXPECT_EQ(res.moves_accepted, 0u);
  EXPECT_EQ(db.hpwl(), legal_hpwl);
}

// ---------------------------------------------------------------------------
// PlacementServer (in-process)
// ---------------------------------------------------------------------------

JobSpec demo_spec(long cells, int iters, bool full_flow = false) {
  JobSpec s;
  s.demo_cells = cells;
  s.max_iters = iters;
  s.full_flow = full_flow;
  return s;
}

TEST(PlacementServer, RunsJobToCompletionAndStreamsEvents) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);

  const auto out = srv.submit(demo_spec(300, 60));
  ASSERT_TRUE(out.ok) << out.error;
  const auto rec = srv.wait(out.id, 120.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kDone);
  EXPECT_TRUE(std::isfinite(rec->hpwl));
  EXPECT_GT(rec->hpwl, 0.0);
  EXPECT_GT(rec->iterations, 0);
  EXPECT_GE(rec->finished_s, rec->started_s);

  const auto batch = srv.events(out.id, 0, 5.0);
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(batch->terminal);
  ASSERT_FALSE(batch->events.empty());
  for (std::size_t i = 1; i < batch->events.size(); ++i) {
    EXPECT_EQ(batch->events[i].seq, batch->events[i - 1].seq + 1);
    EXPECT_GT(batch->events[i].iter, batch->events[i - 1].iter);
  }
  EXPECT_EQ(batch->next_seq, batch->events.back().seq + 1);

  EXPECT_FALSE(srv.status(9999).has_value());
  srv.shutdown(/*drain=*/true);
  const auto s = srv.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(PlacementServer, ServedJobsReproduceDirectRunBitForBit) {
  // The acceptance determinism check: the same demo design through the
  // daemon path twice, and once directly via the place_bookshelf code path,
  // must agree on HPWL to the last bit (thread count fixed at 1).
  const long cells = 400;
  const int iters = 100;

  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  double served_hpwl[2] = {0, 0};
  double served_dp[2] = {0, 0};
  for (int round = 0; round < 2; ++round) {
    const auto out = srv.submit(demo_spec(cells, iters, /*full_flow=*/true));
    ASSERT_TRUE(out.ok) << out.error;
    const auto rec = srv.wait(out.id, 300.0);
    ASSERT_TRUE(rec.has_value());
    ASSERT_EQ(rec->state, JobState::kDone);
    EXPECT_TRUE(rec->legalized);
    served_hpwl[round] = rec->hpwl;
    served_dp[round] = rec->dp_hpwl;
  }
  srv.shutdown(true);
  EXPECT_EQ(std::memcmp(&served_hpwl[0], &served_hpwl[1], sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&served_dp[0], &served_dp[1], sizeof(double)), 0);

  // Direct run, replicating the demo job's construction path exactly.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "xplace_test_server_direct";
  fs::create_directories(dir);
  io::GeneratorSpec gen;
  gen.name = "demo";
  gen.num_cells = static_cast<std::size_t>(cells);
  gen.num_nets = gen.num_cells + gen.num_cells / 20;
  gen.seed = 11;
  const db::Database generated = io::generate(gen);
  io::write_bookshelf(generated, dir.string(), "demo");
  db::Database db = io::read_bookshelf_aux((dir / "demo.aux").string());
  core::PlacerConfig pcfg = core::PlacerConfig::xplace();
  pcfg.max_iters = iters;
  pcfg.threads = 1;
  core::GlobalPlacer placer(db, pcfg);
  const core::GlobalPlaceResult gp = placer.run();
  lg::abacus_legalize(db, &placer.execution());
  dp::detailed_place(db, {}, &placer.execution());
  std::error_code ec;
  fs::remove_all(dir, ec);

  EXPECT_EQ(std::memcmp(&served_hpwl[0], &gp.hpwl, sizeof(double)), 0);
  const double direct_dp = db.hpwl();
  EXPECT_EQ(std::memcmp(&served_dp[0], &direct_dp, sizeof(double)), 0);
}

TEST(PlacementServer, CancelWhileRunningCommitsBestSnapshot) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  const auto out = srv.submit(demo_spec(1500, 5000));
  ASSERT_TRUE(out.ok);

  // Wait for real progress (streamed events prove the GP loop is running),
  // then cancel.
  const auto batch = srv.events(out.id, 0, 60.0);
  ASSERT_TRUE(batch.has_value());
  ASSERT_FALSE(batch->terminal) << "job finished before cancel could land";
  std::string error;
  ASSERT_TRUE(srv.cancel(out.id, &error)) << error;

  const auto rec = srv.wait(out.id, 60.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kCancelled);
  EXPECT_EQ(rec->stop_reason, core::StopReason::kCancelled);
  EXPECT_TRUE(std::isfinite(rec->hpwl));
  EXPECT_GT(rec->hpwl, 0.0);
  EXPECT_LT(rec->iterations, 5000);

  // Cancelling a terminal job is an error, not a crash.
  EXPECT_FALSE(srv.cancel(out.id, &error));
  EXPECT_NE(error.find("terminal"), std::string::npos);
  srv.shutdown(true);
}

TEST(PlacementServer, CancelWhileQueuedNeverRuns) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  const auto running = srv.submit(demo_spec(1500, 5000));
  ASSERT_TRUE(running.ok);
  const auto queued = srv.submit(demo_spec(300, 50));
  ASSERT_TRUE(queued.ok);

  std::string error;
  ASSERT_TRUE(srv.cancel(queued.id, &error)) << error;
  const auto rec = srv.status(queued.id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kCancelled);
  EXPECT_EQ(rec->iterations, 0);
  EXPECT_EQ(rec->started_s, 0.0);

  ASSERT_TRUE(srv.cancel(running.id, &error)) << error;
  srv.shutdown(true);
}

TEST(PlacementServer, DeadlineExpiredInQueueIsNeverRun) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  // Occupy the only slot long enough for the second job's deadline to lapse
  // while it is still queued. The doomed job carries a deadline so it sorts
  // AHEAD of the blocker — wait until the blocker is actually running before
  // submitting it, or the worker could pop the doomed job first.
  const auto blocker = srv.submit(demo_spec(1500, 5000));
  ASSERT_TRUE(blocker.ok);
  for (int i = 0; i < 500; ++i) {
    if (srv.status(blocker.id)->state == JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(srv.status(blocker.id)->state, JobState::kRunning);
  JobSpec doomed = demo_spec(300, 50);
  doomed.deadline_s = 0.05;
  const auto out = srv.submit(doomed);
  ASSERT_TRUE(out.ok);

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::string error;
  ASSERT_TRUE(srv.cancel(blocker.id, &error)) << error;

  const auto rec = srv.wait(out.id, 60.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kCancelled);
  EXPECT_EQ(rec->stop_reason, core::StopReason::kDeadline);
  EXPECT_EQ(rec->iterations, 0);  // popped after its deadline: never ran
  srv.shutdown(true);
}

TEST(PlacementServer, QueueFullRejectsSubmission) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.queue_capacity = 1;
  PlacementServer srv(cfg);
  const auto a = srv.submit(demo_spec(1500, 5000));
  ASSERT_TRUE(a.ok);
  // Poll until the worker pops A (the queue slot frees up).
  for (int i = 0; i < 200; ++i) {
    if (srv.status(a.id)->state == JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(srv.status(a.id)->state, JobState::kRunning);

  const auto b = srv.submit(demo_spec(300, 50));
  ASSERT_TRUE(b.ok);  // fills the single queue slot
  const auto c = srv.submit(demo_spec(300, 50));
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.error.find("queue full"), std::string::npos);
  EXPECT_EQ(srv.stats().rejected, 1u);

  std::string error;
  srv.cancel(a.id, &error);
  srv.cancel(b.id, &error);
  srv.shutdown(true);
}

TEST(PlacementServer, FailedJobReportsError) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  JobSpec s;
  s.aux = "/nonexistent/never/there.aux";
  const auto out = srv.submit(s);
  ASSERT_TRUE(out.ok);
  const auto rec = srv.wait(out.id, 60.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kFailed);
  EXPECT_FALSE(rec->error.empty());
  srv.shutdown(true);
  EXPECT_EQ(srv.stats().failed, 1u);
}

TEST(PlacementServer, ConcurrentSoakIsDeterministic) {
  // Four identical jobs over two slots: all must finish and agree on HPWL
  // to the last bit — concurrency must not leak into results.
  ServerConfig cfg;
  cfg.max_concurrency = 2;
  PlacementServer srv(cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    JobSpec s = demo_spec(400, 80);
    s.label = "soak" + std::to_string(i);
    const auto out = srv.submit(s);
    ASSERT_TRUE(out.ok) << out.error;
    ids.push_back(out.id);
  }
  std::vector<double> hpwl;
  for (const std::uint64_t id : ids) {
    const auto rec = srv.wait(id, 300.0);
    ASSERT_TRUE(rec.has_value());
    ASSERT_EQ(rec->state, JobState::kDone) << rec->error;
    hpwl.push_back(rec->hpwl);
  }
  for (std::size_t i = 1; i < hpwl.size(); ++i) {
    EXPECT_EQ(std::memcmp(&hpwl[0], &hpwl[i], sizeof(double)), 0) << i;
  }
  srv.shutdown(true);
  const auto s = srv.stats();  // after shutdown: every lease returned
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.threads_leased, 0u);
}

TEST(PlacementServer, ShutdownDrainFinishesQueuedWork) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  const auto a = srv.submit(demo_spec(300, 40));
  const auto b = srv.submit(demo_spec(300, 40));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  srv.shutdown(/*drain=*/true);  // blocks until both are done
  EXPECT_EQ(srv.status(a.id)->state, JobState::kDone);
  EXPECT_EQ(srv.status(b.id)->state, JobState::kDone);
  EXPECT_FALSE(srv.accepting());
  const auto late = srv.submit(demo_spec(300, 40));
  EXPECT_FALSE(late.ok);
}

TEST(PlacementServer, ShutdownNoDrainCancelsEverything) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  const auto a = srv.submit(demo_spec(1500, 5000));
  const auto b = srv.submit(demo_spec(1500, 5000));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  srv.shutdown(/*drain=*/false);
  EXPECT_TRUE(is_terminal(srv.status(a.id)->state));
  EXPECT_EQ(srv.status(b.id)->state, JobState::kCancelled);
  EXPECT_EQ(srv.status(b.id)->iterations, 0);
}

TEST(PlacementServer, TerminalRecordsAreEvictedBeyondCapacity) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.result_capacity = 2;
  PlacementServer srv(cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    const auto out = srv.submit(demo_spec(300, 30));
    ASSERT_TRUE(out.ok);
    ids.push_back(out.id);
    ASSERT_TRUE(srv.wait(out.id, 120.0).has_value());
  }
  srv.shutdown(true);
  EXPECT_FALSE(srv.status(ids[0]).has_value());  // evicted FIFO
  EXPECT_TRUE(srv.status(ids[1]).has_value());
  EXPECT_TRUE(srv.status(ids[2]).has_value());
}

TEST(PlacementServer, SpillDirProducesLoadableCheckpoints) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("xplace_spill_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.spill_dir = dir.string();
  cfg.spill_period = 20;
  PlacementServer srv(cfg);

  const auto out = srv.submit(demo_spec(300, 60));
  ASSERT_TRUE(out.ok) << out.error;
  const auto rec = srv.wait(out.id, 120.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kDone);
  ASSERT_FALSE(rec->spill_path.empty());
  ASSERT_TRUE(std::filesystem::exists(rec->spill_path)) << rec->spill_path;
  // The spilled XPCK is a real checkpoint: it loads, validates, and matches
  // the job's design shape.
  const core::RunCheckpoint ck = io::read_checkpoint(rec->spill_path);
  EXPECT_EQ(ck.n_movable, 300u);
  EXPECT_GT(ck.next_iter, 0);
  EXPECT_TRUE(std::isfinite(ck.hpwl));
  srv.shutdown(true);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// UDS daemon end to end
// ---------------------------------------------------------------------------

class UdsDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = (std::filesystem::temp_directory_path() /
                    ("xplace_test_" + std::to_string(::getpid()) + ".sock"))
                       .string();
    ServerConfig cfg;
    cfg.max_concurrency = 2;
    srv_ = std::make_unique<PlacementServer>(cfg);
    daemon_ = std::thread([this] { serve(*srv_, socket_path_); });
    // Wait for the listener to come up.
    for (int i = 0; i < 200; ++i) {
      UdsStream probe = UdsStream::connect(socket_path_);
      if (probe.valid()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "daemon never started listening";
  }

  void TearDown() override {
    if (daemon_.joinable()) {
      UdsStream s = UdsStream::connect(socket_path_);
      if (s.valid()) {
        Request req;
        req.cmd = Command::kShutdown;
        req.drain = false;
        s.write_line(build_request(req));
        std::string line;
        bool oversized = false;
        s.read_line(&line, &oversized);
      }
      daemon_.join();
    }
  }

  /// One-line request/response helper; returns the parsed response.
  json::Value rpc(const std::string& request_line) {
    UdsStream s = UdsStream::connect(socket_path_);
    EXPECT_TRUE(s.valid());
    EXPECT_TRUE(s.write_line(request_line));
    std::string line;
    bool oversized = false;
    EXPECT_TRUE(s.read_line(&line, &oversized));
    json::Value v;
    std::string error;
    EXPECT_TRUE(json::parse(line, &v, &error)) << line;
    return v;
  }

  std::string socket_path_;
  std::unique_ptr<PlacementServer> srv_;
  std::thread daemon_;
};

TEST_F(UdsDaemonTest, SubmitResultCancelOverTheSocket) {
  Request submit;
  submit.cmd = Command::kSubmit;
  submit.spec = demo_spec(300, 50);
  submit.spec.label = "uds_done";
  json::Value resp = rpc(build_request(submit));
  ASSERT_TRUE(resp.get_bool("ok", false)) << resp.dump();
  const auto id = static_cast<std::uint64_t>(resp.get_number("id", 0));
  ASSERT_GT(id, 0u);

  Request result;
  result.cmd = Command::kResult;
  result.id = id;
  result.wait = true;
  result.timeout_s = 120.0;
  resp = rpc(build_request(result));
  ASSERT_TRUE(resp.get_bool("ok", false)) << resp.dump();
  EXPECT_EQ(resp.get_string("state"), "done");
  EXPECT_GT(resp.get_number("hpwl", 0), 0.0);

  // Second job: cancel it mid-run through the socket.
  submit.spec = demo_spec(1500, 5000);
  submit.spec.label = "uds_cancelled";
  resp = rpc(build_request(submit));
  ASSERT_TRUE(resp.get_bool("ok", false));
  const auto cid = static_cast<std::uint64_t>(resp.get_number("id", 0));

  // Let it make progress, then cancel.
  {
    UdsStream es = UdsStream::connect(socket_path_);
    ASSERT_TRUE(es.valid());
    Request events;
    events.cmd = Command::kEvents;
    events.id = cid;
    events.timeout_s = 60.0;
    ASSERT_TRUE(es.write_line(build_request(events)));
    std::string line;
    bool oversized = false;
    ASSERT_TRUE(es.read_line(&line, &oversized));  // first streamed event
    json::Value ev;
    std::string error;
    ASSERT_TRUE(json::parse(line, &ev, &error)) << line;
    EXPECT_TRUE(ev.has("event"));
  }
  Request cancel;
  cancel.cmd = Command::kCancel;
  cancel.id = cid;
  resp = rpc(build_request(cancel));
  ASSERT_TRUE(resp.get_bool("ok", false)) << resp.dump();

  result.id = cid;
  resp = rpc(build_request(result));
  ASSERT_TRUE(resp.get_bool("ok", false));
  EXPECT_EQ(resp.get_string("state"), "cancelled");
  EXPECT_EQ(resp.get_string("stop_reason"), "cancelled");
  EXPECT_GT(resp.get_number("hpwl", 0), 0.0);  // best-snapshot placement
}

TEST_F(UdsDaemonTest, MalformedAndOversizedLinesGetErrorsNotDisconnects) {
  UdsStream s = UdsStream::connect(socket_path_);
  ASSERT_TRUE(s.valid());
  std::string line;
  bool oversized = false;

  ASSERT_TRUE(s.write_line("this is not json"));
  ASSERT_TRUE(s.read_line(&line, &oversized));
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(line, &v, &error));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_NE(v.get_string("error").find("malformed"), std::string::npos);

  // Oversized line: the daemon answers with an error and keeps the
  // connection usable for the next (valid) request.
  ASSERT_TRUE(s.write_line(std::string(kMaxLineBytes + 100, 'z')));
  ASSERT_TRUE(s.read_line(&line, &oversized));
  ASSERT_TRUE(json::parse(line, &v, &error));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_NE(v.get_string("error").find("exceeds"), std::string::npos);

  Request stats;
  stats.cmd = Command::kStats;
  ASSERT_TRUE(s.write_line(build_request(stats)));
  ASSERT_TRUE(s.read_line(&line, &oversized));
  ASSERT_TRUE(json::parse(line, &v, &error));
  EXPECT_TRUE(v.get_bool("ok", false)) << line;
  EXPECT_TRUE(v.has("queue_capacity"));
}

TEST_F(UdsDaemonTest, StatusOfUnknownJobIsAnError) {
  Request status;
  status.cmd = Command::kStatus;
  status.id = 424242;
  const json::Value v = rpc(build_request(status));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_NE(v.get_string("error").find("unknown"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Observability plane (DESIGN.md §12)
// ---------------------------------------------------------------------------

/// RAII: leaves the global tracer disabled and cleared however a test exits.
struct TracerGuard {
  ~TracerGuard() {
    telemetry::Tracer::global().disable();
    telemetry::Tracer::global().clear();
  }
};

TEST(PlacementServer, ServedJobSpansCarryItsTraceId) {
  TracerGuard guard;
  telemetry::Tracer::global().enable(1 << 14);

  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  JobSpec spec = demo_spec(300, 40, /*full_flow=*/true);
  spec.label = "traced";
  const auto out = srv.submit(spec);
  ASSERT_TRUE(out.ok) << out.error;
  const auto rec = srv.wait(out.id, 120.0);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->state, JobState::kDone);
  ASSERT_GT(rec->trace_id, 0u);
  srv.shutdown(/*drain=*/true);

  // The tentpole acceptance: one coherent per-job timeline — scheduler spans
  // (queue wait, lease, job root) AND flow spans (GP run + iterations, LG,
  // DP) all tagged with the job's trace id, regardless of recording thread.
  std::map<std::string, int> tagged;
  for (const auto& span : telemetry::Tracer::global().snapshot()) {
    if (span.trace_id == rec->trace_id) ++tagged[span.name];
  }
  for (const char* name :
       {"serve.queue_wait", "serve.lease_acquire", "serve.job",
        "serve.load_design", "gp.run", "gp.iter", "serve.lg", "lg.abacus",
        "serve.dp", "dp.run"}) {
    EXPECT_GE(tagged[name], 1) << "span not tagged with the job id: " << name;
  }
  EXPECT_EQ(tagged["gp.iter"], rec->iterations);

  // The label table maps the id to its human-readable track name.
  bool labeled = false;
  for (const auto& [id, label] : telemetry::Tracer::global().trace_labels()) {
    if (id == rec->trace_id) {
      EXPECT_NE(label.find("traced"), std::string::npos);
      labeled = true;
    }
  }
  EXPECT_TRUE(labeled);
}

TEST(PlacementServer, StatsReportSloLatencyPercentiles) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  // The SLO histograms are global-registry entries shared across the test
  // process: assert deltas, not absolutes.
  const PlacementServer::Stats before = srv.stats();

  for (int i = 0; i < 2; ++i) {
    const auto out = srv.submit(demo_spec(300, 30));
    ASSERT_TRUE(out.ok);
    const auto rec = srv.wait(out.id, 120.0);
    ASSERT_TRUE(rec.has_value());
    ASSERT_EQ(rec->state, JobState::kDone);
  }
  const PlacementServer::Stats after = srv.stats();
  srv.shutdown(/*drain=*/true);

  EXPECT_EQ(after.e2e.count, before.e2e.count + 2);
  EXPECT_EQ(after.run.count, before.run.count + 2);
  EXPECT_EQ(after.queue_wait.count, before.queue_wait.count + 2);
  EXPECT_GT(after.e2e.p50, 0.0);
  EXPECT_GT(after.run.p50, 0.0);
  EXPECT_LE(after.e2e.p50, after.e2e.p95);
  EXPECT_LE(after.e2e.p95, after.e2e.p99);
  EXPECT_EQ(after.deadline_missed, before.deadline_missed);
}

TEST(PlacementServer, DeadlineMissesAreCounted) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  const std::uint64_t missed_before = srv.stats().deadline_missed;

  // Expires while queued: the worker pops it past-deadline and never runs it.
  JobSpec spec = demo_spec(1500, 5000);
  spec.deadline_s = 1e-9;
  const auto out = srv.submit(spec);
  ASSERT_TRUE(out.ok);
  const auto rec = srv.wait(out.id, 60.0);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->state, JobState::kCancelled);
  ASSERT_EQ(rec->stop_reason, core::StopReason::kDeadline);
  EXPECT_EQ(srv.stats().deadline_missed, missed_before + 1);
  srv.shutdown(/*drain=*/true);
}

TEST(PlacementServer, EvictionGcsPerJobMetricsAndTraceLabels) {
  TracerGuard guard;
  telemetry::Tracer::global().enable(1 << 14);

  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.result_capacity = 1;
  PlacementServer srv(cfg);

  JobSpec first = demo_spec(300, 20);
  first.label = "gc_victim";
  const auto out1 = srv.submit(first);
  ASSERT_TRUE(out1.ok);
  const auto rec1 = srv.wait(out1.id, 120.0);
  ASSERT_TRUE(rec1.has_value());
  ASSERT_EQ(rec1->state, JobState::kDone);
  const std::uint64_t victim_trace = rec1->trace_id;

  JobSpec second = demo_spec(300, 20);
  second.label = "gc_survivor";
  const auto out2 = srv.submit(second);
  ASSERT_TRUE(out2.ok);
  ASSERT_TRUE(srv.wait(out2.id, 120.0).has_value());
  srv.shutdown(/*drain=*/true);

  // Retention policy: metric families and trace labels live exactly as long
  // as the job record. Job 1 was evicted (capacity 1) → fully GC'd.
  EXPECT_FALSE(srv.status(out1.id).has_value());
  bool victim_metrics = false, survivor_metrics = false;
  for (const auto& [name, g] : telemetry::Registry::global().gauges()) {
    (void)g;
    if (name.rfind("serve.job.gc_victim.", 0) == 0) victim_metrics = true;
    if (name.rfind("serve.job.gc_survivor.", 0) == 0) survivor_metrics = true;
  }
  EXPECT_FALSE(victim_metrics);
  EXPECT_TRUE(survivor_metrics);
  for (const auto& [id, label] : telemetry::Tracer::global().trace_labels()) {
    (void)label;
    EXPECT_NE(id, victim_trace);
  }
}

TEST(Protocol, JobJsonCarriesTraceIdAndDropCount) {
  JobRecord rec;
  rec.id = 3;
  rec.state = JobState::kDone;
  rec.trace_id = 77;
  rec.events_dropped = 5;
  const json::Value v{job_to_json(rec)};
  EXPECT_EQ(v.get_number("trace_id", 0), 77.0);
  EXPECT_EQ(v.get_number("events_dropped", 0), 5.0);

  JobRecord untraced;
  untraced.id = 4;
  const json::Value u{job_to_json(untraced)};
  EXPECT_FALSE(u.has("trace_id"));        // 0 = never assigned: omitted
  EXPECT_FALSE(u.has("events_dropped"));  // nothing dropped: omitted
}

TEST_F(UdsDaemonTest, MetricsVerbReturnsPrometheusText) {
  // Run one job first so the serve.* families exist.
  Request submit;
  submit.cmd = Command::kSubmit;
  submit.spec = demo_spec(300, 20);
  const json::Value sub = rpc(build_request(submit));
  ASSERT_TRUE(sub.get_bool("ok", false)) << sub.dump();
  Request result;
  result.cmd = Command::kResult;
  result.id = static_cast<std::uint64_t>(sub.get_number("id", 0));
  result.wait = true;
  result.timeout_s = 120.0;
  ASSERT_TRUE(rpc(build_request(result)).get_bool("ok", false));

  UdsStream s = UdsStream::connect(socket_path_);
  ASSERT_TRUE(s.valid());
  s.set_max_line(4u << 20);  // the exposition is one long response line
  Request req;
  req.cmd = Command::kMetrics;
  ASSERT_TRUE(s.write_line(build_request(req)));
  std::string line;
  bool oversized = false;
  ASSERT_TRUE(s.read_line(&line, &oversized));
  ASSERT_FALSE(oversized);
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::parse(line, &v, &error)) << error;
  ASSERT_TRUE(v.get_bool("ok", false)) << line;
  const std::string text = v.get_string("metrics");
  // The SLO histogram families with percentile-derivable cumulative buckets,
  // plus the serve counters (stable names — DESIGN.md §12 catalog).
  for (const char* needle :
       {"# TYPE xplace_serve_queue_wait_s histogram",
        "xplace_serve_queue_wait_s_bucket{le=", "xplace_serve_run_s_bucket",
        "xplace_serve_e2e_s_bucket", "xplace_serve_e2e_s_count",
        "xplace_serve_submitted", "xplace_serve_completed"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // Still a JSON-lines connection: a stats request works on the same stream.
  Request stats;
  stats.cmd = Command::kStats;
  ASSERT_TRUE(s.write_line(build_request(stats)));
  ASSERT_TRUE(s.read_line(&line, &oversized));
  ASSERT_TRUE(json::parse(line, &v, &error));
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_TRUE(v.has("latency"));
  EXPECT_TRUE(v.has("events_dropped"));
}

}  // namespace
}  // namespace xplace::server
