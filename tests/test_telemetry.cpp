// Telemetry subsystem tests: metrics registry (counter/gauge/histogram
// bucketing), span tracer (nesting, ring-buffer wraparound, disabled-mode
// inertness), exporters (Chrome trace JSON parsed back by a minimal JSON
// parser, Prometheus text), the Recorder JSONL sink, and a GlobalPlacer
// smoke test asserting per-iteration spans match the reported iterations.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/placer.h"
#include "io/generator.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "tensor/dispatch.h"
#include "util/thread_pool.h"

namespace xplace {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::Registry;
using telemetry::SpanEvent;
using telemetry::Tracer;
using telemetry::TraceScope;

// ---------------------------------------------------------------------------
// Minimal strict JSON parser — just enough to validate exporter output by
// parsing it back (objects, arrays, strings, numbers, bools, null).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool has(const std::string& key) const { return obj.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return obj.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses the full input; sets `ok` false on any syntax error or trailing
  /// garbage.
  JsonValue parse(bool* ok) {
    JsonValue v = value();
    skip_ws();
    *ok = !failed_ && pos_ == s_.size();
    return v;
  }

 private:
  void fail() { failed_ = true; }
  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char next() { return pos_ < s_.size() ? s_[pos_++] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool consume(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) {
      fail();
      return false;
    }
    pos_ += len;
    return true;
  }

  JsonValue value() {
    skip_ws();
    if (failed_) return {};
    const char c = peek();
    JsonValue v;
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = string();
      return v;
    }
    if (c == 't') {
      consume("true");
      v.kind = JsonValue::Kind::kBool;
      v.b = true;
      return v;
    }
    if (c == 'f') {
      consume("false");
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (c == 'n') {
      consume("null");
      return v;
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    next();  // '{'
    skip_ws();
    if (peek() == '}') {
      next();
      return v;
    }
    while (!failed_) {
      skip_ws();
      if (peek() != '"') {
        fail();
        break;
      }
      const std::string key = string();
      skip_ws();
      if (next() != ':') {
        fail();
        break;
      }
      v.obj[key] = value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        fail();
        break;
      }
    }
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    next();  // '['
    skip_ws();
    if (peek() == ']') {
      next();
      return v;
    }
    while (!failed_) {
      v.arr.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        fail();
        break;
      }
    }
    return v;
  }

  std::string string() {
    std::string out;
    next();  // '"'
    while (!failed_) {
      const char c = next();
      if (c == '"') break;
      if (c == '\0') {
        fail();
        break;
      }
      if (c == '\\') {
        const char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(next()))) fail();
            }
            out += '?';  // codepoint content irrelevant for these tests
            break;
          }
          default: fail();
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') next();
    while (std::isdigit(static_cast<unsigned char>(peek()))) next();
    if (peek() == '.') {
      next();
      while (std::isdigit(static_cast<unsigned char>(peek()))) next();
    }
    if (peek() == 'e' || peek() == 'E') {
      next();
      if (peek() == '+' || peek() == '-') next();
      while (std::isdigit(static_cast<unsigned char>(peek()))) next();
    }
    JsonValue v;
    if (pos_ == start) {
      fail();
      return v;
    }
    v.kind = JsonValue::Kind::kNumber;
    v.num = std::strtod(s_.c_str() + start, nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// RAII: leaves the global tracer disabled and cleared however a test exits.
struct TracerGuard {
  ~TracerGuard() {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

// ---------------- metrics: counters & gauges ----------------

TEST(Metrics, CounterAccumulates) {
  Registry reg;
  Counter& c = reg.counter("a");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("a"), &c);  // find-or-create returns same instance
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeStoresLastValue) {
  Registry reg;
  Gauge& g = reg.gauge("overflow");
  g.set(0.5);
  g.set(0.07);
  EXPECT_DOUBLE_EQ(g.value(), 0.07);
}

TEST(Metrics, CountersAreThreadSafe) {
  Registry reg;
  Counter& c = reg.counter("hits");
  ThreadPool pool(4);
  pool.parallel_for(100000, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) c.inc();
  });
  EXPECT_EQ(c.value(), 100000u);
}

// ---------------- metrics: histogram bucketing ----------------

TEST(Histogram, BucketsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // <= 1      -> bucket 0 (le semantics)
  h.observe(5.0);    // <= 10     -> bucket 1
  h.observe(100.0);  // <= 100    -> bucket 2
  h.observe(1e6);    // overflow  -> +Inf bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6, 1e-9);
}

TEST(Histogram, SortsAndDedupesBounds) {
  Histogram h({10.0, 1.0, 10.0});
  ASSERT_EQ(h.upper_bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h.upper_bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bounds()[1], 10.0);
  h.observe(2.0);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
}

TEST(Histogram, ExponentialBounds) {
  const auto b = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

TEST(Histogram, ConcurrentObserveLosesNothing) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {0.25, 0.5, 0.75});
  ThreadPool pool(4);
  pool.parallel_for(40000, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) {
      h.observe(static_cast<double>(i % 4) / 4.0);  // 0, .25, .5, .75
    }
  });
  EXPECT_EQ(h.count(), 40000u);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 40000u);
  EXPECT_EQ(counts[0], 20000u);  // 0 and .25 both land in the first bucket
  EXPECT_NEAR(h.sum(), 40000 * (0.0 + 0.25 + 0.5 + 0.75) / 4.0, 1e-6);
}

// ---------------- tracer ----------------

TEST(Tracer, DisabledScopeIsInert) {
  TracerGuard guard;
  Tracer::global().disable();
  const std::uint64_t before = Tracer::global().total_recorded();
  {
    TraceScope s("noop");
    s.arg("x", 1.0);
  }
  EXPECT_EQ(Tracer::global().total_recorded(), before);
}

TEST(Tracer, RecordsNestedSpansWithDepth) {
  TracerGuard guard;
  Tracer& tracer = Tracer::global();
  tracer.enable(256);
  {
    XP_TRACE_SCOPE("outer");
    {
      XP_TRACE_SCOPE("inner");
    }
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner ends (and records) first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  // Outer strictly contains inner.
  EXPECT_LE(spans[1].begin_us, spans[0].begin_us);
  EXPECT_GE(spans[1].end_us, spans[0].end_us);
}

TEST(Tracer, RingBufferWrapsKeepingNewest) {
  TracerGuard guard;
  Tracer& tracer = Tracer::global();
  tracer.enable(8);
  static const char* kNames[20] = {
      "s0",  "s1",  "s2",  "s3",  "s4",  "s5",  "s6",  "s7",  "s8",  "s9",
      "s10", "s11", "s12", "s13", "s14", "s15", "s16", "s17", "s18", "s19"};
  for (int i = 0; i < 20; ++i) {
    TraceScope s(kNames[i]);
  }
  EXPECT_EQ(tracer.total_recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Oldest-first order of the surviving (newest) 8.
  for (int i = 0; i < 8; ++i) {
    EXPECT_STREQ(spans[i].name, kNames[12 + i]);
    EXPECT_EQ(spans[i].seq, static_cast<std::uint64_t>(12 + i));
  }
}

TEST(Tracer, ArgsAreCappedAtMax) {
  TracerGuard guard;
  Tracer::global().enable(16);
  {
    TraceScope s("argtest");
    s.arg("a", 1).arg("b", 2).arg("c", 3).arg("d", 4).arg("e", 5);
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].num_args, SpanEvent::kMaxArgs);
  EXPECT_STREQ(spans[0].arg_names[3], "d");
}

TEST(Tracer, ConcurrentRecordingKeepsEverySpan) {
  TracerGuard guard;
  Tracer& tracer = Tracer::global();
  tracer.enable(1 << 14);
  ThreadPool pool(4);
  pool.parallel_for(5000, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) {
      XP_TRACE_SCOPE("worker_span");
    }
  });
  EXPECT_EQ(tracer.total_recorded(), 5000u);
  EXPECT_EQ(tracer.snapshot().size(), 5000u);
}

TEST(Tracer, DispatcherEmitsKernelSpans) {
  TracerGuard guard;
  auto& disp = tensor::Dispatcher::global();
  Tracer::global().enable(256);
  int runs = 0;
  disp.run("unit_kernel", [&] { ++runs; });
  disp.run("unit_kernel", [&] { ++runs; });
  EXPECT_EQ(runs, 2);
  const auto spans = Tracer::global().snapshot();
  int kernel_spans = 0;
  for (const auto& s : spans) {
    if (std::string(s.name) == "unit_kernel") ++kernel_spans;
  }
  EXPECT_EQ(kernel_spans, 2);
}

// ---------------- exporters ----------------

TEST(Export, ChromeTraceIsValidJson) {
  TracerGuard guard;
  Tracer::global().enable(64);
  {
    TraceScope s("kernel \"quoted\"\n");
    s.arg("hpwl", 1.5e7).arg("overflow", 0.12);
  }
  {
    XP_TRACE_SCOPE("plain");
  }
  const std::string json =
      telemetry::to_chrome_trace(Tracer::global().snapshot(), "unit");
  bool ok = false;
  JsonParser parser(json);
  const JsonValue root = parser.parse(&ok);
  ASSERT_TRUE(ok) << json;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  // Metadata event + 2 spans.
  ASSERT_EQ(events.arr.size(), 3u);
  EXPECT_EQ(events.arr[0].at("ph").str, "M");
  const JsonValue& span = events.arr[1];
  EXPECT_EQ(span.at("ph").str, "X");
  EXPECT_EQ(span.at("name").str, "kernel \"quoted\"\n");
  EXPECT_EQ(span.at("cat").str, "xplace");
  EXPECT_GE(span.at("dur").num, 0.0);
  ASSERT_TRUE(span.has("args"));
  EXPECT_DOUBLE_EQ(span.at("args").at("hpwl").num, 1.5e7);
  EXPECT_DOUBLE_EQ(span.at("args").at("overflow").num, 0.12);
  EXPECT_FALSE(events.arr[2].has("args"));
}

TEST(Export, PrometheusTextFormat) {
  Registry reg;
  reg.counter("dispatch.launches").inc(7);
  reg.gauge("gp.overflow").set(0.25);
  Histogram& h = reg.histogram("step.ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  const std::string text = telemetry::to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE xplace_dispatch_launches counter\n"
                      "xplace_dispatch_launches 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("xplace_gp_overflow 0.25"), std::string::npos);
  // Histogram buckets are cumulative.
  EXPECT_NE(text.find("xplace_step_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("xplace_step_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("xplace_step_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("xplace_step_ms_count 3"), std::string::npos);
}

TEST(Export, WriteTextFileReportsErrors) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "xplace_telemetry_test.txt")
          .string();
  EXPECT_TRUE(telemetry::write_text_file(path, "hello"));
  std::string error;
  EXPECT_FALSE(telemetry::write_text_file("/nonexistent_dir_xp/f.txt", "x",
                                          &error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove(path);
}

// ---------------- recorder JSONL sink ----------------

TEST(Recorder, JsonlLinesParseBack) {
  core::Recorder rec;
  core::IterationRecord r;
  r.iter = 3;
  r.hpwl = 1.25e6;
  r.overflow = 0.4;
  r.omega = 0.61;
  r.density_skipped = true;
  rec.add(r);
  r.iter = 4;
  r.density_skipped = false;
  rec.add(r);

  const std::string jsonl = rec.to_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = jsonl.substr(start, end - start);
    bool ok = false;
    JsonParser parser(line);
    const JsonValue v = parser.parse(&ok);
    ASSERT_TRUE(ok) << line;
    EXPECT_EQ(v.at("iter").num, 3.0 + lines);
    EXPECT_DOUBLE_EQ(v.at("overflow").num, 0.4);
    EXPECT_EQ(v.at("density_skipped").b, lines == 0);
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(Recorder, WritePicksFormatByExtension) {
  core::Recorder rec;
  core::IterationRecord r;
  r.iter = 0;
  r.hpwl = 10.0;
  rec.add(r);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv = (dir / "xp_rec_test.csv").string();
  const std::string jsonl = (dir / "xp_rec_test.jsonl").string();
  ASSERT_TRUE(rec.write(csv));
  ASSERT_TRUE(rec.write(jsonl));
  EXPECT_FALSE(rec.write("/nonexistent_dir_xp/rec.jsonl"));

  std::FILE* f = std::fopen(csv.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {0};
  ASSERT_GT(std::fread(buf, 1, 4, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, 4), "iter");  // CSV header row

  f = std::fopen(jsonl.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ASSERT_GT(std::fread(buf, 1, 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(buf[0], '{');  // JSONL object per line

  std::filesystem::remove(csv);
  std::filesystem::remove(jsonl);
}

// ---------------- end-to-end: placer emits per-iteration spans ----------------

TEST(PlacerTelemetry, IterationSpansMatchResult) {
  TracerGuard guard;
  io::GeneratorSpec spec;
  spec.name = "telemetry_smoke";
  spec.num_cells = 300;
  spec.num_nets = 320;
  spec.seed = 9;
  db::Database db = io::generate(spec);

  Tracer::global().enable(1 << 15);
  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 32;
  cfg.max_iters = 60;
  cfg.verbose = false;
  core::GlobalPlacer placer(db, cfg);
  const core::GlobalPlaceResult res = placer.run();
  Tracer::global().disable();

  ASSERT_GT(res.iterations, 0);
  int iter_spans = 0, run_spans = 0, wl_spans = 0, fft_spans = 0;
  double last_hpwl = -1.0, last_overflow = -1.0, last_omega = -1.0;
  for (const SpanEvent& s : Tracer::global().snapshot()) {
    const std::string name = s.name;
    if (name == "gp.iter") {
      ++iter_spans;
      for (int a = 0; a < s.num_args; ++a) {
        if (std::string(s.arg_names[a]) == "hpwl") last_hpwl = s.arg_values[a];
        if (std::string(s.arg_names[a]) == "overflow")
          last_overflow = s.arg_values[a];
        if (std::string(s.arg_names[a]) == "omega") last_omega = s.arg_values[a];
      }
    } else if (name == "gp.run") {
      ++run_spans;
    } else if (name == "gp.phase.wirelength") {
      ++wl_spans;
    } else if (name == "gp.phase.fft") {
      ++fft_spans;
    }
  }
  EXPECT_EQ(iter_spans, res.iterations);
  EXPECT_EQ(run_spans, 1);
  EXPECT_EQ(wl_spans, res.iterations);  // wirelength runs every iteration
  EXPECT_GT(fft_spans, 0);
  EXPECT_GT(last_hpwl, 0.0);
  EXPECT_GE(last_overflow, 0.0);
  EXPECT_GE(last_omega, 0.0);
  // The recorder agrees with the span args of the last iteration.
  EXPECT_DOUBLE_EQ(placer.recorder().back().hpwl, last_hpwl);

  // Run-level gauges were published to the global registry.
  bool found = false;
  for (const auto& [name, g] : telemetry::Registry::global().gauges()) {
    if (name == "gp.iterations") {
      EXPECT_DOUBLE_EQ(g->value(), res.iterations);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------- histogram percentiles (observability plane) ----------------

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(HistogramQuantile, SingleSampleInterpolatesItsBucket) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(3.0);  // lands in (2, 4]
  // Prometheus semantics: linear interpolation within the bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);   // halfway into (2, 4]
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);   // bucket upper bound
  EXPECT_NEAR(h.quantile(0.0), 2.0, 1e-9);  // clamped rank ~ bucket start
}

TEST(HistogramQuantile, FirstBucketInterpolatesFromZero) {
  Histogram h({10.0});
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);  // 0 + 10 * 0.5
}

TEST(HistogramQuantile, OverflowBucketClampsToHighestFiniteBound) {
  Histogram h({1.0, 2.0});
  h.observe(100.0);  // +Inf bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(HistogramQuantile, QuantileIsClampedAndMonotonic) {
  Histogram h(Histogram::exponential_bounds(1e-3, 2.0, 20));
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-3);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LT(p50, p95);
  EXPECT_LT(p95, p99);
  // Uniform on (0, 1]: percentile estimates land near their rank.
  EXPECT_NEAR(p50, 0.5, 0.15);
  EXPECT_NEAR(p95, 0.95, 0.2);
}

// ---------------- registry GC (per-job metric retention) ----------------

/// The registry accessors return insertion-ordered (name, instrument) lists.
template <typename Pairs>
bool registry_has(const Pairs& pairs, const std::string& name) {
  for (const auto& [n, instrument] : pairs) {
    (void)instrument;
    if (n == name) return true;
  }
  return false;
}

TEST(RegistryGc, UnregisterRemovesByExactName) {
  Registry reg;
  reg.counter("keep").inc();
  reg.counter("drop").inc();
  reg.gauge("drop").set(1.0);
  reg.histogram("drop", {1.0});
  EXPECT_EQ(reg.unregister("drop"), 3u);
  EXPECT_EQ(reg.unregister("drop"), 0u);   // idempotent
  EXPECT_EQ(reg.unregister("absent"), 0u);
  EXPECT_EQ(reg.counters().size(), 1u);
  EXPECT_TRUE(registry_has(reg.counters(), "keep"));
}

TEST(RegistryGc, RemovePrefixSweepsOneJobsFamilies) {
  Registry reg;
  reg.gauge("serve.job.a.hpwl").set(1.0);
  reg.gauge("serve.job.a.iterations").set(2.0);
  reg.gauge("serve.job.ab.hpwl").set(3.0);  // shares a prefix of the label
  reg.gauge("serve.job.b.hpwl").set(4.0);
  reg.counter("serve.completed").inc();
  EXPECT_EQ(reg.remove_prefix("serve.job.a."), 2u);
  EXPECT_FALSE(registry_has(reg.gauges(), "serve.job.a.hpwl"));
  EXPECT_TRUE(registry_has(reg.gauges(), "serve.job.ab.hpwl"));
  EXPECT_TRUE(registry_has(reg.gauges(), "serve.job.b.hpwl"));
  EXPECT_TRUE(registry_has(reg.counters(), "serve.completed"));
  EXPECT_EQ(reg.remove_prefix("serve.job.a."), 0u);
}

// ---------------- trace context (request/job identity) ----------------

TEST(TraceContext, IdsAreFreshAndNonzero) {
  const std::uint64_t a = telemetry::TraceContext::new_id();
  const std::uint64_t b = telemetry::TraceContext::new_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceContext, BindingNestsAndRestores) {
  EXPECT_EQ(telemetry::TraceContext::current(), 0u);
  {
    telemetry::TraceBinding outer(7);
    EXPECT_EQ(telemetry::TraceContext::current(), 7u);
    {
      telemetry::TraceBinding inner(9);
      EXPECT_EQ(telemetry::TraceContext::current(), 9u);
    }
    EXPECT_EQ(telemetry::TraceContext::current(), 7u);
  }
  EXPECT_EQ(telemetry::TraceContext::current(), 0u);
}

TEST(TraceContext, SpansRecordTheBoundId) {
  TracerGuard guard;
  Tracer::global().enable(64);
  { XP_TRACE_SCOPE("unbound"); }
  {
    telemetry::TraceBinding bind(42);
    XP_TRACE_SCOPE("bound");
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, 0u);
  EXPECT_EQ(spans[1].trace_id, 42u);
}

TEST(TraceContext, ThreadPoolPropagatesTheDispatchersBinding) {
  TracerGuard guard;
  Tracer::global().enable(1 << 12);
  const std::uint64_t id = telemetry::TraceContext::new_id();
  ThreadPool pool(4);
  {
    telemetry::TraceBinding bind(id);
    pool.parallel_for(
        256,
        [](std::size_t b, std::size_t e, std::size_t) {
          (void)e;
          (void)b;
          XP_TRACE_SCOPE("chunk");
        },
        /*grain=*/16);
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_FALSE(spans.empty());
  for (const SpanEvent& s : spans) {
    EXPECT_EQ(s.trace_id, id) << s.name;
  }
}

TEST(TraceContext, LabelTableSetForgetSnapshot) {
  TracerGuard guard;
  Tracer& tracer = Tracer::global();
  tracer.set_trace_label(5, "job 5 (alpha)");
  tracer.set_trace_label(6, "job 6 (beta)");
  tracer.set_trace_label(5, "job 5 (renamed)");  // update-in-place
  auto labels = tracer.trace_labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].first, 5u);
  EXPECT_EQ(labels[0].second, "job 5 (renamed)");
  tracer.forget_trace(5);
  labels = tracer.trace_labels();
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].first, 6u);
  tracer.forget_trace(6);
  EXPECT_TRUE(tracer.trace_labels().empty());
}

TEST(Export, ChromeTraceGroupsSpansByTraceId) {
  TracerGuard guard;
  Tracer::global().enable(64);
  { XP_TRACE_SCOPE("process_level"); }
  {
    telemetry::TraceBinding bind(101);
    XP_TRACE_SCOPE("job_a_span");
  }
  {
    telemetry::TraceBinding bind(202);
    XP_TRACE_SCOPE("job_b_span");
  }
  const std::string json = telemetry::to_chrome_trace(
      Tracer::global().snapshot(), "unit", {{101, "job a"}, {202, "job b"}});
  bool ok = false;
  JsonParser parser(json);
  const JsonValue root = parser.parse(&ok);
  ASSERT_TRUE(ok) << json;
  // Collect pid per span name and process_name metadata per pid.
  std::map<std::string, double> span_pid;
  std::map<double, std::string> track_name;
  for (const JsonValue& ev : root.at("traceEvents").arr) {
    if (ev.at("ph").str == "X") {
      span_pid[ev.at("name").str] = ev.at("pid").num;
    } else if (ev.at("ph").str == "M" &&
               ev.at("name").str == "process_name") {
      track_name[ev.at("pid").num] = ev.at("args").at("name").str;
    }
  }
  ASSERT_EQ(span_pid.size(), 3u);
  EXPECT_EQ(span_pid["process_level"], 1.0);
  EXPECT_NE(span_pid["job_a_span"], span_pid["job_b_span"]);
  EXPECT_NE(span_pid["job_a_span"], 1.0);
  EXPECT_EQ(track_name[span_pid["job_a_span"]], "job a");
  EXPECT_EQ(track_name[span_pid["job_b_span"]], "job b");
  EXPECT_EQ(track_name[1.0], "unit");
}

}  // namespace
}  // namespace xplace
