// Fence-region support (the paper's stated future work): multi-electrostatic
// global placement, fence-aware legalization and detailed placement.
#include <gtest/gtest.h>

#include "core/placer.h"
#include "dp/detailed_placer.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "lg/checker.h"
#include "lg/row_map.h"
#include "lg/tetris.h"

namespace xplace {
namespace {

io::GeneratorSpec fenced_spec(std::size_t cells = 1200, int fences = 2,
                              std::uint64_t seed = 77) {
  io::GeneratorSpec spec;
  spec.name = "fence_unit";
  spec.num_cells = cells;
  spec.num_nets = cells + 50;
  spec.num_macros = 3;
  spec.num_io_pads = 12;
  spec.num_fences = fences;
  spec.fence_area_fraction = 0.18;
  spec.fenced_cell_fraction = 0.25;
  spec.seed = seed;
  return spec;
}

// ---------------- database / generator ----------------

TEST(FenceDb, BuilderGuards) {
  db::Database db;
  db.set_region({0, 0, 100, 100});
  const int a = db.add_cell("a", 2, 10, db::CellKind::kMovable);
  const int m = db.add_cell("m", 20, 20, db::CellKind::kFixed);
  EXPECT_THROW(db.add_fence_region("bad", {5, 5, 5, 10}), std::invalid_argument);
  const int f = db.add_fence_region("f0", {10, 10, 50, 50});
  EXPECT_EQ(f, 0);
  EXPECT_THROW(db.assign_to_fence(a, 3), std::invalid_argument);
  EXPECT_THROW(db.assign_to_fence(m, f), std::invalid_argument);
  db.assign_to_fence(a, f);
  const int net = db.add_net("n");
  db.add_pin(net, a, 0, 0);
  db.add_pin(net, m, 0, 0);
  db.finalize();
  EXPECT_TRUE(db.has_fences());
  EXPECT_EQ(db.cell_fence(db.cell_id("a")), 0);
  EXPECT_EQ(db.cell_fence(db.cell_id("m")), -1);
}

TEST(FenceGenerator, CreatesDisjointFencesWithMembers) {
  db::Database db = io::generate(fenced_spec());
  ASSERT_EQ(db.fences().size(), 2u);
  // Disjoint from each other and from macros.
  const auto& f0 = db.fences()[0].rect;
  const auto& f1 = db.fences()[1].rect;
  EXPECT_LE(f0.overlap_area(f1), 1e-9);
  for (std::size_t c = db.num_movable(); c < db.num_physical(); ++c) {
    if (db.area(c) > 4.0) {
      EXPECT_LE(db.cell_rect(c).overlap_area(f0), 1e-9) << db.cell_name(c);
      EXPECT_LE(db.cell_rect(c).overlap_area(f1), 1e-9) << db.cell_name(c);
    }
  }
  // Members exist and start inside their fence.
  std::size_t members = 0;
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    const int f = db.cell_fence(c);
    if (f >= 0) {
      ++members;
      EXPECT_TRUE(db.fences()[f].rect.contains(db.x(c), db.y(c)));
    }
  }
  EXPECT_GT(members, db.num_movable() / 10);
}

TEST(FenceDb, FillersTaggedAndPlacedPerRegion) {
  db::Database db = io::generate(fenced_spec());
  db.insert_fillers(3);
  std::size_t fenced_fillers = 0;
  for (std::size_t c = db.num_physical(); c < db.num_cells_total(); ++c) {
    const int f = db.cell_fence(c);
    if (f >= 0) {
      ++fenced_fillers;
      EXPECT_TRUE(db.fences()[f].rect.contains(db.x(c), db.y(c)));
    }
  }
  EXPECT_GT(fenced_fillers, 0u);
}

// ---------------- row map ----------------

TEST(FenceRowMap, SegmentsLabeledAndContained) {
  db::Database db = io::generate(fenced_spec());
  lg::RowMap rows(db);
  std::size_t labeled = 0;
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    for (const lg::Segment& s : rows.segments(r)) {
      if (s.label >= 0) {
        ++labeled;
        const RectD& fr = db.fences()[s.label].rect;
        EXPECT_GE(s.lx, fr.lx - 1e-6);
        EXPECT_LE(s.hx, fr.hx + 1e-6);
        EXPECT_GE(rows.row_y(r), fr.ly - 1e-6);
        EXPECT_LE(rows.row_y(r) + rows.row_height(), fr.hy + 1e-6);
      } else {
        // Default segments must not intrude into any fence.
        const double mid_y = rows.row_y(r) + rows.row_height() * 0.5;
        for (const db::FenceRegion& f : db.fences()) {
          const bool in_y = mid_y > f.rect.ly && mid_y < f.rect.hy;
          const bool in_x = s.lx < f.rect.hx - 1e-6 && s.hx > f.rect.lx + 1e-6;
          EXPECT_FALSE(in_y && in_x)
              << "default segment intrudes fence at row " << r;
        }
      }
    }
  }
  EXPECT_GT(labeled, 0u);
}

// ---------------- end-to-end ----------------

class FenceFlow : public ::testing::Test {
 protected:
  static db::Database placed() {
    db::Database db = io::generate(fenced_spec());
    core::PlacerConfig cfg;
    cfg.grid_dim = 64;
    cfg.max_iters = 700;
    core::GlobalPlacer placer(db, cfg);
    placer.run();
    return db;
  }
};

TEST_F(FenceFlow, GpKeepsFencedCellsInside) {
  db::Database db = placed();
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    const int f = db.cell_fence(c);
    if (f >= 0) {
      EXPECT_TRUE(db.fences()[f].rect.contains(db.x(c), db.y(c)))
          << db.cell_name(c);
    }
  }
}

TEST_F(FenceFlow, GpSpreadsDespiteFences) {
  db::Database db = io::generate(fenced_spec());
  core::PlacerConfig cfg;
  cfg.grid_dim = 64;
  cfg.max_iters = 700;
  core::GlobalPlacer placer(db, cfg);
  const core::GlobalPlaceResult res = placer.run();
  EXPECT_LT(res.overflow, 0.25);
}

TEST_F(FenceFlow, TetrisRespectsFences) {
  db::Database db = placed();
  const lg::LegalizeStats stats = lg::tetris_legalize(db);
  EXPECT_EQ(stats.failed_cells, 0u);
  const lg::LegalityReport rep = lg::check_legality(db);
  EXPECT_TRUE(rep.legal()) << rep.summary()
                           << (rep.samples.empty() ? "" : "\n" + rep.samples[0]);
}

TEST_F(FenceFlow, AbacusRespectsFences) {
  db::Database db = placed();
  const lg::LegalizeStats stats = lg::abacus_legalize(db);
  EXPECT_EQ(stats.failed_cells, 0u);
  const lg::LegalityReport rep = lg::check_legality(db);
  EXPECT_TRUE(rep.legal()) << rep.summary()
                           << (rep.samples.empty() ? "" : "\n" + rep.samples[0]);
}

TEST_F(FenceFlow, DetailedPlacementPreservesFences) {
  db::Database db = placed();
  lg::abacus_legalize(db);
  const dp::DetailedPlaceResult res = dp::detailed_place(db);
  EXPECT_LE(res.hpwl_after, res.hpwl_before + 1e-6);
  const lg::LegalityReport rep = lg::check_legality(db);
  EXPECT_TRUE(rep.legal()) << rep.summary()
                           << (rep.samples.empty() ? "" : "\n" + rep.samples[0]);
}

TEST(FenceChecker, DetectsEscapeAndIntrusion) {
  db::Database db = io::generate(fenced_spec(600, 1, 78));
  core::PlacerConfig cfg;
  cfg.grid_dim = 64;
  cfg.max_iters = 400;
  core::GlobalPlacer placer(db, cfg);
  placer.run();
  lg::abacus_legalize(db);
  ASSERT_TRUE(lg::check_legality(db).legal());

  // Move one fenced cell far outside its fence.
  int fenced = -1, unfenced = -1;
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    if (db.cell_fence(c) >= 0 && fenced < 0) fenced = static_cast<int>(c);
    if (db.cell_fence(c) < 0 && unfenced < 0) unfenced = static_cast<int>(c);
  }
  ASSERT_GE(fenced, 0);
  ASSERT_GE(unfenced, 0);
  const double sx = db.x(fenced), sy = db.y(fenced);
  db.set_position(fenced, db.x(unfenced), db.y(unfenced));
  EXPECT_GT(lg::check_legality(db).fence_violations, 0u);
  db.set_position(fenced, sx, sy);

  // Push a default cell into the fence.
  const RectD& fr = db.fences()[0].rect;
  db.set_position(unfenced, fr.cx(), fr.cy());
  EXPECT_GT(lg::check_legality(db).fence_violations, 0u);
}

}  // namespace
}  // namespace xplace
