#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "tensor/dispatch.h"
#include "tensor/ops.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"

namespace xplace::tensor {
namespace {

TEST(Tensor, ZerosInitialized) {
  Tensor t = Tensor::zeros({4, 3});
  EXPECT_EQ(t.numel(), 12u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
  EXPECT_EQ(t.shape_str(), "[4, 3]");
}

TEST(Tensor, SharedStorageSemantics) {
  Tensor a = Tensor::full({4}, 2.0f);
  Tensor b = a;  // shallow
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 9.0f);
  EXPECT_TRUE(a.same_storage(b));
  Tensor c = a.clone();
  c[1] = -1.0f;
  EXPECT_EQ(a[1], 2.0f);
  EXPECT_FALSE(a.same_storage(c));
}

TEST(Tensor, FromVector) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.numel(), 3u);
  EXPECT_EQ(t[2], 3.0f);
}

TEST(TensorOps, ElementwiseBasics) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  Tensor s = add(a, b);
  EXPECT_EQ(s[0], 5.0f);
  EXPECT_EQ(s[2], 9.0f);
  Tensor d = sub(b, a);
  EXPECT_EQ(d[1], 3.0f);
  Tensor m = mul(a, b);
  EXPECT_EQ(m[2], 18.0f);
  Tensor ms = mul_scalar(a, 2.0f);
  EXPECT_EQ(ms[1], 4.0f);
  Tensor mx = maximum(a, Tensor::from({3, 1, 2}));
  EXPECT_EQ(mx[0], 3.0f);
  EXPECT_EQ(mx[1], 2.0f);
  Tensor cm = clamp_min(Tensor::from({-1, 0.5f, 2}), 0.0f);
  EXPECT_EQ(cm[0], 0.0f);
  EXPECT_EQ(cm[2], 2.0f);
}

TEST(TensorOps, InPlaceBasics) {
  Tensor a = Tensor::from({1, 2, 3});
  add_scaled_(a, Tensor::from({1, 1, 1}), 0.5f);
  EXPECT_EQ(a[0], 1.5f);
  mul_scalar_(a, 2.0f);
  EXPECT_EQ(a[2], 7.0f);
  axpby_(a, 0.5f, Tensor::from({2, 2, 2}), 1.0f);
  EXPECT_EQ(a[0], 3.5f);  // 0.5*3 + 2
  zero_(a);
  EXPECT_EQ(a[1], 0.0f);
  fill_(a, 4.0f);
  EXPECT_EQ(a[0], 4.0f);
  Tensor b = Tensor::zeros({3});
  copy_(b, a);
  EXPECT_EQ(b[2], 4.0f);
}

TEST(TensorOps, Reductions) {
  Tensor a = Tensor::from({-1, 2, -3, 4});
  EXPECT_FLOAT_EQ(sum(a), 2.0f);
  EXPECT_FLOAT_EQ(abs_sum(a), 10.0f);
  EXPECT_FLOAT_EQ(max_value(a), 4.0f);
  EXPECT_FLOAT_EQ(min_value(a), -3.0f);
  EXPECT_FLOAT_EQ(dot(a, a), 30.0f);
}

TEST(TensorOps, FiniteStatsCountsAndSums) {
  std::vector<float> a = {1.0f, -2.0f, 3.0f};
  std::vector<float> b = {-4.0f, 5.0f, -6.0f};
  FiniteStats st = finite_stats(a.data(), b.data(), 3);
  EXPECT_EQ(st.nonfinite, 0u);
  EXPECT_DOUBLE_EQ(st.abs_sum, 21.0);

  a[1] = std::numeric_limits<float>::quiet_NaN();
  b[0] = std::numeric_limits<float>::infinity();
  b[2] = -std::numeric_limits<float>::infinity();
  st = finite_stats(a.data(), b.data(), 3);
  EXPECT_EQ(st.nonfinite, 3u);
  EXPECT_DOUBLE_EQ(st.abs_sum, 1.0 + 3.0 + 5.0);  // finite entries only
}

TEST(TensorOps, FiniteStatsNullBufferAndSingleLaunch) {
  auto& d = Dispatcher::global();
  std::vector<float> a = {1.0f, std::numeric_limits<float>::quiet_NaN()};
  d.reset_counters();
  const FiniteStats st = finite_stats(a.data(), nullptr, 2);
  EXPECT_EQ(d.total_launches(), 1u);  // fused scan is one launch
  EXPECT_EQ(st.nonfinite, 1u);
  EXPECT_DOUBLE_EQ(st.abs_sum, 1.0);
  EXPECT_EQ(finite_stats(nullptr, nullptr, 0).nonfinite, 0u);
  d.reset_counters();
}

TEST(TensorOps, AllFinite) {
  Tensor ok = Tensor::from({1.0f, -2.0f, 0.0f});
  EXPECT_TRUE(all_finite(ok));
  Tensor bad = Tensor::from({1.0f, 2.0f, 3.0f});
  bad[1] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(all_finite(bad));
}

TEST(Dispatcher, CountsLaunchesPerOp) {
  auto& d = Dispatcher::global();
  d.reset_counters();
  Tensor a = Tensor::from({1, 2});
  Tensor b = Tensor::from({3, 4});
  (void)add(a, b);
  (void)add(a, b);
  (void)mul(a, b);
  EXPECT_EQ(d.total_launches(), 3u);
  EXPECT_EQ(d.launch_counts().at("add"), 2u);
  EXPECT_EQ(d.launch_counts().at("mul"), 1u);
  EXPECT_FALSE(d.report().empty());
  d.reset_counters();
  EXPECT_EQ(d.total_launches(), 0u);
}

TEST(Dispatcher, LaunchLatencySlowsDispatch) {
  auto& d = Dispatcher::global();
  d.reset_counters();
  Tensor a = Tensor::from({1.0f});
  const auto t0 = std::chrono::steady_clock::now();
  {
    LaunchLatencyGuard guard(2e-3);  // 2 ms per launch
    for (int i = 0; i < 5; ++i) (void)neg(a);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_GE(elapsed, 9e-3);  // ≥ 5 × 2ms (minus jitter margin)
  // Guard restored zero latency.
  EXPECT_EQ(d.launch_latency(), 0.0);
}

TEST(Tape, BackwardRunsInReverseOrderAndClears) {
  Tape tape;
  std::vector<int> order;
  tape.record("first", [&] { order.push_back(1); });
  tape.record("second", [&] { order.push_back(2); });
  tape.record("third", [&] { order.push_back(3); });
  EXPECT_EQ(tape.size(), 3u);
  tape.backward();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(tape.size(), 0u);
}

TEST(Tape, BackwardNodesCountAsLaunches) {
  auto& d = Dispatcher::global();
  d.reset_counters();
  Tape tape;
  tape.record("node", [] {});
  tape.record("node", [] {});
  tape.backward();
  EXPECT_EQ(d.launch_counts().at("node.backward"), 2u);
  d.reset_counters();
}

}  // namespace
}  // namespace xplace::tensor
