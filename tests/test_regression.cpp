// Tests for the perf-regression gate (server/regression.h): bench-JSON
// loading, row matching (including duplicate keys), tolerance-band logic
// (per-row override vs default), and report formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "server/regression.h"

namespace xplace::server {
namespace {

BenchRow row(const char* kernel, double ns, double tolerance = 0.0) {
  BenchRow r;
  r.kernel = kernel;
  r.backend = "serial";
  r.simd = "avx2";
  r.threads = 1;
  r.ns_per_iter = ns;
  r.tolerance = tolerance;
  return r;
}

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return path;
}

TEST(Regression, IdenticalFilesHaveNoRegressions) {
  BenchFile base;
  base.rows = {row("a", 100.0), row("b", 200.0)};
  const RegressionReport report = compare_bench(base, base, 0.25);
  EXPECT_EQ(report.regressions, 0u);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(report.rows[0].ratio, 1.0);
  EXPECT_TRUE(report.only_baseline.empty());
  EXPECT_TRUE(report.only_current.empty());
}

TEST(Regression, SlowdownBeyondTheBandIsFlagged) {
  BenchFile base, cur;
  base.rows = {row("a", 100.0), row("b", 200.0)};
  cur.rows = {row("a", 210.0), row("b", 220.0)};  // 2.1x vs +10%
  const RegressionReport report = compare_bench(base, cur, 0.25);
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_TRUE(report.rows[0].regressed);
  EXPECT_FALSE(report.rows[1].regressed);
  EXPECT_NE(format_report(report).find("REGRESSION"), std::string::npos);
}

TEST(Regression, PerRowToleranceOverridesTheDefault) {
  BenchFile base, cur;
  base.rows = {row("noisy", 100.0, /*tolerance=*/2.0)};  // +200% band
  cur.rows = {row("noisy", 250.0)};                      // 2.5x: in band
  EXPECT_EQ(compare_bench(base, cur, 0.25).regressions, 0u);
  cur.rows[0].ns_per_iter = 350.0;  // 3.5x: out of even the wide band
  EXPECT_EQ(compare_bench(base, cur, 0.25).regressions, 1u);
}

TEST(Regression, UnmatchedRowsAreReportedButNeverFail) {
  BenchFile base, cur;
  base.rows = {row("removed", 100.0), row("kept", 100.0)};
  cur.rows = {row("kept", 100.0), row("added", 100.0)};
  const RegressionReport report = compare_bench(base, cur, 0.25);
  EXPECT_EQ(report.regressions, 0u);
  ASSERT_EQ(report.only_baseline.size(), 1u);
  ASSERT_EQ(report.only_current.size(), 1u);
  EXPECT_NE(report.only_baseline[0].find("removed"), std::string::npos);
  EXPECT_NE(report.only_current[0].find("added"), std::string::npos);
}

TEST(Regression, DuplicateKeysMatchPositionally) {
  // table3 emits one row per launch-latency mode under the same key; the
  // occurrence index keeps the pairing positional.
  BenchFile base, cur;
  base.rows = {row("k", 100.0), row("k", 1000.0)};
  cur.rows = {row("k", 110.0), row("k", 2500.0)};  // second one regresses
  const RegressionReport report = compare_bench(base, cur, 0.25);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_FALSE(report.rows[0].regressed);
  EXPECT_TRUE(report.rows[1].regressed);
  EXPECT_NE(report.rows[0].key, report.rows[1].key);
}

TEST(Regression, LoadsTheSharedBenchSchema) {
  const std::string path = write_temp("xplace_test_bench.json", R"({
    "bench": "bench_micro_ops",
    "results": [
      {"kernel": "wa_fused", "backend": "serial", "threads": 1,
       "simd": "avx2", "ns_per_iter": 1460722.3},
      {"kernel": "soak", "backend": "serve", "threads": 1, "simd": "n/a",
       "ns_per_iter": 5.0, "tolerance": 3.0},
      {"kernel": "no_measurement"}
    ]
  })");
  BenchFile file;
  std::string error;
  ASSERT_TRUE(load_bench_json(path, &file, &error)) << error;
  EXPECT_EQ(file.bench, "bench_micro_ops");
  ASSERT_EQ(file.rows.size(), 2u);  // the row without ns_per_iter is skipped
  EXPECT_EQ(file.rows[0].kernel, "wa_fused");
  EXPECT_DOUBLE_EQ(file.rows[0].ns_per_iter, 1460722.3);
  EXPECT_DOUBLE_EQ(file.rows[0].tolerance, 0.0);
  EXPECT_DOUBLE_EQ(file.rows[1].tolerance, 3.0);
  std::filesystem::remove(path);
}

TEST(Regression, LoadErrorsAreDiagnosed) {
  BenchFile file;
  std::string error;
  EXPECT_FALSE(load_bench_json("/nonexistent_xp/b.json", &file, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const std::string bad = write_temp("xplace_test_bad.json", "{not json");
  EXPECT_FALSE(load_bench_json(bad, &file, &error));
  EXPECT_NE(error.find("offset"), std::string::npos);

  const std::string no_results =
      write_temp("xplace_test_no_results.json", R"({"bench":"x"})");
  EXPECT_FALSE(load_bench_json(no_results, &file, &error));
  EXPECT_NE(error.find("results"), std::string::npos);
  std::filesystem::remove(bad);
  std::filesystem::remove(no_results);
}

}  // namespace
}  // namespace xplace::server
