// Tests for the pluggable execution backend: ThreadPool edge cases and
// exception propagation, ExecutionContext selection/publishing, bitwise
// parallel 2-D transforms, serial-vs-threaded GP parity and run-to-run
// determinism, bitwise-parallel Abacus legalization, worker-count-independent
// local reordering, and guardian recovery on the threaded backend.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/placer.h"
#include "dp/local_reorder.h"
#include "fft/dct.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "telemetry/metrics.h"
#include "util/execution.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace xplace {
namespace {

db::Database make_db(std::size_t cells = 600, std::uint64_t seed = 17) {
  io::GeneratorSpec spec;
  spec.name = "exec_unit";
  spec.num_cells = cells;
  spec.num_nets = cells + cells / 10;
  spec.seed = seed;
  return io::generate(spec);
}

core::PlacerConfig small_cfg(int threads) {
  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 64;
  cfg.max_iters = 80;
  cfg.threads = threads;
  return cfg;
}

// ---------------- ThreadPool edge cases ----------------

TEST(ThreadPoolEdge, SingleThreadPoolDegeneratesToPlainLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(100, 0);
  std::size_t max_worker = 0;
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e,
                                     std::size_t worker) {
    max_worker = std::max(max_worker, worker);
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(max_worker, 0u);  // caller thread only
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolEdge, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolEdge, EmptyRangeIsANoop) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolEdge, EveryIndexVisitedOnceWithGrainOne) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(
      hits.size(),
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolEdge, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          1000,
          [&](std::size_t b, std::size_t, std::size_t) {
            if (b == 0) throw std::runtime_error("kernel fault");
          },
          /*grain=*/64),
      std::runtime_error);
  // The pool must have quiesced and remain fully usable afterwards.
  std::atomic<int> sum{0};
  pool.parallel_for(256, [&](std::size_t b, std::size_t e, std::size_t) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 256);
}

TEST(ThreadPoolEdge, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<int> inner_sum(8, 0);
  pool.parallel_for(
      inner_sum.size(),
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i) {
          // A kernel calling back into its own pool must degrade to an inline
          // serial loop (there is one task slot), not deadlock on the worker
          // it occupies.
          pool.parallel_for(
              100, [&](std::size_t ib, std::size_t ie, std::size_t) {
                inner_sum[i] += static_cast<int>(ie - ib);
              });
        }
      },
      /*grain=*/1);
  for (int s : inner_sum) EXPECT_EQ(s, 100);
}

TEST(ThreadPoolEdge, ConcurrentExternalDispatchFallsBackInline) {
  // Two flow threads hammering one pool: whichever loses the dispatch race
  // must run its range inline rather than corrupt the shared task slot.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4000);
  for (auto& h : hits) h.store(0);
  auto drive = [&](std::size_t offset) {
    for (int rep = 0; rep < 50; ++rep) {
      pool.parallel_for(2000, [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i) hits[offset + i].fetch_add(1);
      });
    }
  };
  std::thread other([&] { drive(2000); });
  drive(0);
  other.join();
  for (auto& h : hits) EXPECT_EQ(h.load(), 50);
}

TEST(ThreadPoolEdge, StatsAccumulateAcrossDispatches) {
  ThreadPool pool(2);
  const auto before = pool.stats();
  pool.parallel_for(10000, [](std::size_t, std::size_t, std::size_t) {});
  pool.parallel_for(10000, [](std::size_t, std::size_t, std::size_t) {});
  const auto after = pool.stats();
  EXPECT_EQ(after.dispatches, before.dispatches + 2);
  EXPECT_GE(after.wall_seconds, before.wall_seconds);
}

// ---------------- ExecutionContext ----------------

TEST(ExecutionContextTest, FromThreadsSelectsBackends) {
  const ExecutionContext serial = ExecutionContext::from_threads(1);
  EXPECT_EQ(serial.backend(), ExecBackend::kSerial);
  EXPECT_FALSE(serial.parallel());
  EXPECT_EQ(serial.threads(), 1u);
  EXPECT_EQ(serial.pool(), nullptr);

  const ExecutionContext threaded = ExecutionContext::from_threads(3);
  EXPECT_EQ(threaded.backend(), ExecBackend::kThreadPool);
  EXPECT_TRUE(threaded.parallel());
  EXPECT_EQ(threaded.threads(), 3u);
  ASSERT_NE(threaded.pool(), nullptr);

  const ExecutionContext hw = ExecutionContext::from_threads(-1);
  EXPECT_GE(hw.threads(), 1u);
}

TEST(ExecutionContextTest, ZeroThreadsDefersToEnv) {
  const char* saved = std::getenv("XPLACE_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("XPLACE_THREADS");
  const ExecutionContext ctx = ExecutionContext::from_threads(0);
  EXPECT_EQ(ctx.backend(), ExecBackend::kSerial);
  if (saved != nullptr) ::setenv("XPLACE_THREADS", saved_value.c_str(), 1);
}

TEST(ExecutionContextTest, PublishExportsBackendAndPoolStats) {
  telemetry::Registry reg;
  ExecutionContext ctx = ExecutionContext::from_threads(2);
  ctx.pool()->parallel_for(4096, [](std::size_t, std::size_t, std::size_t) {});
  ctx.publish(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("exec.threads").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("exec.backend").value(), 1.0);
  EXPECT_GE(reg.counter("exec.pool.dispatches").value(), 1u);
  EXPECT_GE(reg.gauge("exec.pool.wall_seconds").value(), 0.0);
}

// ---------------- pooled 2-D transforms ----------------

TEST(PooledDct, TwoDTransformsBitwiseMatchSerialForAnyWorkerCount) {
  constexpr std::size_t kRows = 64, kCols = 64;
  Rng rng(99);
  std::vector<double> base(kRows * kCols);
  for (double& v : base) v = rng.uniform(-2.0, 2.0);

  using Transform2D = void (*)(double*, std::size_t, std::size_t, ThreadPool*);
  const Transform2D transforms[] = {&fft::dct2, &fft::idct2, &fft::idxst_idct,
                                    &fft::idct_idxst};
  for (Transform2D t : transforms) {
    std::vector<double> serial = base;
    t(serial.data(), kRows, kCols, nullptr);
    for (std::size_t workers : {2u, 3u, 5u}) {
      ThreadPool pool(workers);
      std::vector<double> pooled = base;
      t(pooled.data(), kRows, kCols, &pool);
      for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(pooled[i], serial[i]) << "index " << i << " with "
                                        << workers << " workers";
      }
    }
  }
}

// ---------------- GP parity + determinism ----------------

TEST(ExecutionGP, ThreadedRunIsDeterministicForFixedThreadCount) {
  std::vector<double> x1, x2;
  for (int run = 0; run < 2; ++run) {
    db::Database db = make_db();
    core::GlobalPlacer placer(db, small_cfg(/*threads=*/4));
    placer.run();
    auto& out = run == 0 ? x1 : x2;
    for (std::size_t c = 0; c < db.num_movable(); ++c) {
      out.push_back(db.x(c));
      out.push_back(db.y(c));
    }
  }
  ASSERT_EQ(x1.size(), x2.size());
  for (std::size_t i = 0; i < x1.size(); ++i) {
    ASSERT_EQ(x1[i], x2[i]) << "position " << i;
  }
}

TEST(ExecutionGP, ThreadedMatchesSerialWithinFloatTolerance) {
  core::PlacerConfig cfg_s = small_cfg(/*threads=*/1);
  cfg_s.max_iters = 400;  // let both runs anneal to comparable solutions
  db::Database db_s = make_db();
  core::GlobalPlacer serial(db_s, cfg_s);
  const core::GlobalPlaceResult rs = serial.run();

  core::PlacerConfig cfg_p = cfg_s;
  cfg_p.threads = 4;
  db::Database db_p = make_db();
  core::GlobalPlacer threaded(db_p, cfg_p);
  const core::GlobalPlaceResult rp = threaded.run();

  EXPECT_TRUE(std::isfinite(rp.hpwl));
  // Float accumulation order differs between the backends, and the GP
  // trajectory amplifies it; the runs must still land on equivalent
  // solutions.
  EXPECT_NEAR(rp.hpwl, rs.hpwl, 0.10 * rs.hpwl);
  EXPECT_NEAR(rp.overflow, rs.overflow, 0.05);
}

TEST(ExecutionGP, SerialBackendBitwiseMatchesDefaultConfig) {
  // threads=1 must be the exact historical serial flow: identical to a
  // config that never mentions the execution backend (threads=0, env unset).
  const char* saved = std::getenv("XPLACE_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("XPLACE_THREADS");

  db::Database db_a = make_db();
  core::GlobalPlacer pa(db_a, small_cfg(/*threads=*/1));
  pa.run();
  db::Database db_b = make_db();
  core::GlobalPlacer pb(db_b, small_cfg(/*threads=*/0));
  pb.run();

  for (std::size_t c = 0; c < db_a.num_movable(); ++c) {
    ASSERT_EQ(db_a.x(c), db_b.x(c)) << c;
    ASSERT_EQ(db_a.y(c), db_b.y(c)) << c;
  }
  if (saved != nullptr) ::setenv("XPLACE_THREADS", saved_value.c_str(), 1);
}

// ---------------- LG: bitwise-parallel Abacus ----------------

TEST(ExecutionLG, AbacusParallelBitwiseMatchesSerial) {
  db::Database db_s = make_db(800, 23);
  db::Database db_p = make_db(800, 23);

  lg::abacus_legalize(db_s);  // historical serial path

  const ExecutionContext exec = ExecutionContext::from_threads(4);
  // min_band_clusters=0 forces every band through the pool — the work gate
  // would otherwise keep this small design's bands serial.
  lg::abacus_legalize(db_p, &exec, /*min_band_clusters=*/0);

  for (std::size_t c = 0; c < db_s.num_movable(); ++c) {
    ASSERT_EQ(db_p.x(c), db_s.x(c)) << "cell " << c;
    ASSERT_EQ(db_p.y(c), db_s.y(c)) << "cell " << c;
  }
}

// ---------------- DP: worker-count-independent local reorder ----------------

TEST(ExecutionDP, LocalReorderDeterministicAcrossWorkerCounts) {
  // Same legalized start, reordered under 2 and 4 workers: the snapshot
  // semantics make the outcome independent of the worker count.
  std::vector<double> pos2, pos4;
  for (int workers : {2, 4}) {
    db::Database db = make_db(800, 23);
    lg::abacus_legalize(db);
    const ExecutionContext exec = ExecutionContext::from_threads(workers);
    const dp::PassStats stats = dp::local_reorder_pass(db, 3, &exec);
    // Guaranteed, not luck: rows price moves against the pass-entry snapshot
    // (joint commits could regress), but the pass recomputes HPWL after
    // committing and redoes the pass serially if it went up.
    EXPECT_LE(stats.hpwl_after, stats.hpwl_before + 1e-9);
    auto& out = workers == 2 ? pos2 : pos4;
    for (std::size_t c = 0; c < db.num_movable(); ++c) {
      out.push_back(db.x(c));
      out.push_back(db.y(c));
    }
  }
  ASSERT_EQ(pos2.size(), pos4.size());
  for (std::size_t i = 0; i < pos2.size(); ++i) {
    ASSERT_EQ(pos2[i], pos4[i]) << "position " << i;
  }
}

TEST(ExecutionDP, LocalReorderSerialPathUnchangedWithNullExec) {
  db::Database db_a = make_db(800, 23);
  lg::abacus_legalize(db_a);
  db::Database db_b = make_db(800, 23);
  lg::abacus_legalize(db_b);

  const dp::PassStats sa = dp::local_reorder_pass(db_a, 3);
  const dp::PassStats sb = dp::local_reorder_pass(db_b, 3, nullptr);
  EXPECT_EQ(sa.moves_accepted, sb.moves_accepted);
  for (std::size_t c = 0; c < db_a.num_movable(); ++c) {
    ASSERT_EQ(db_a.x(c), db_b.x(c)) << c;
  }
}

// ---------------- guardian under the pool ----------------

TEST(ExecutionGuardian, FaultInjectionRecoversOnThreadedBackend) {
  db::Database db = make_db();
  core::PlacerConfig cfg = small_cfg(/*threads=*/4);
  cfg.max_iters = 300;
  core::GlobalPlacer placer(db, cfg);
  placer.guardian().set_fault_plan(
      core::FaultPlan::parse("nonfinite_grad@iter:30,spike@iter:60"));
  const core::GlobalPlaceResult res = placer.run();

  // At least the iter-30 fault fires even if the run converges early.
  EXPECT_GE(placer.guardian().faults_injected(), 1);
  EXPECT_GE(res.sentinel_trips, 1);
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_TRUE(std::isfinite(res.hpwl));
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    ASSERT_TRUE(std::isfinite(db.x(c)) && std::isfinite(db.y(c))) << c;
  }
}

}  // namespace
}  // namespace xplace
