#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "db/stats.h"
#include "io/bookshelf.h"
#include "io/generator.h"
#include "io/suites.h"

namespace xplace::io {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("xplace_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  fs::path dir_;
  static inline int counter_ = 0;
};

GeneratorSpec small_spec() {
  GeneratorSpec spec;
  spec.name = "unit";
  spec.num_cells = 800;
  spec.num_nets = 850;
  spec.num_macros = 4;
  spec.num_io_pads = 16;
  spec.seed = 123;
  return spec;
}

// ---------------- generator ----------------

TEST(Generator, ProducesRequestedCounts) {
  db::Database db = generate(small_spec());
  EXPECT_EQ(db.num_movable(), 800u);
  EXPECT_EQ(db.num_nets(), 850u);
  EXPECT_EQ(db.num_fixed(), 4u + 16u);  // macros + pads
  EXPECT_GT(db.num_pins(), 2u * db.num_nets());  // avg degree > 2
}

TEST(Generator, DeterministicForSameSeed) {
  db::Database a = generate(small_spec());
  db::Database b = generate(small_spec());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  ASSERT_EQ(a.num_cells_total(), b.num_cells_total());
  EXPECT_DOUBLE_EQ(a.hpwl(), b.hpwl());
  for (std::size_t p = 0; p < a.num_pins(); p += 97) {
    EXPECT_EQ(a.pin_cell(p), b.pin_cell(p));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorSpec s1 = small_spec();
  GeneratorSpec s2 = small_spec();
  s2.seed = 124;
  db::Database a = generate(s1);
  db::Database b = generate(s2);
  EXPECT_NE(a.hpwl(), b.hpwl());
}

TEST(Generator, UtilizationNearTarget) {
  GeneratorSpec spec = small_spec();
  spec.utilization = 0.65;
  db::Database db = generate(spec);
  const db::DesignStats s = db::compute_stats(db);
  EXPECT_NEAR(s.utilization, 0.65, 0.08);
}

TEST(Generator, MacrosDoNotOverlapEachOther) {
  GeneratorSpec spec = small_spec();
  spec.num_macros = 9;
  spec.macro_area_fraction = 0.25;
  db::Database db = generate(spec);
  std::vector<RectD> macros;
  for (std::size_t c = db.num_movable(); c < db.num_physical(); ++c) {
    if (db.width(c) > 2.0) macros.push_back(db.cell_rect(c));
  }
  EXPECT_EQ(macros.size(), 9u);
  for (std::size_t i = 0; i < macros.size(); ++i) {
    for (std::size_t j = i + 1; j < macros.size(); ++j) {
      EXPECT_LE(macros[i].overlap_area(macros[j]), 1e-9)
          << "macros " << i << " and " << j << " overlap";
    }
  }
}

TEST(Generator, AllNetsHaveAtLeastTwoPins) {
  db::Database db = generate(small_spec());
  for (std::size_t e = 0; e < db.num_nets(); ++e) {
    EXPECT_GE(db.net_degree(e), 2u);
  }
}

TEST(Generator, MovableCellsInsideRegion) {
  db::Database db = generate(small_spec());
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    EXPECT_TRUE(db.region().contains(db.x(c), db.y(c)));
  }
}

TEST(Generator, RowsTileTheRegion) {
  db::Database db = generate(small_spec());
  ASSERT_FALSE(db.rows().empty());
  double covered = 0.0;
  for (const auto& row : db.rows()) covered += (row.hx() - row.lx) * row.height;
  EXPECT_NEAR(covered, db.region().area(), 1e-6 * db.region().area());
}

// ---------------- suites ----------------

TEST(Suites, TableOneCountsMatchPaper) {
  const auto& s05 = ispd2005_suite();
  ASSERT_EQ(s05.size(), 8u);
  EXPECT_EQ(s05[0].design, "adaptec1");
  EXPECT_EQ(s05[0].paper_cells, 211000u);
  EXPECT_EQ(s05[7].design, "bigblue4");
  EXPECT_EQ(s05[7].paper_cells, 2177000u);
  const auto& s15 = ispd2015_suite();
  ASSERT_EQ(s15.size(), 20u);
}

TEST(Suites, LookupByName) {
  EXPECT_EQ(find_suite_entry("superblue12").paper_cells, 1293000u);
  EXPECT_THROW(find_suite_entry("nonexistent"), std::invalid_argument);
}

TEST(Suites, ScaledInstantiation) {
  db::Database db = make_design("adaptec1", 100.0);
  EXPECT_NEAR(static_cast<double>(db.num_movable()), 2110.0, 5.0);
  EXPECT_EQ(db.design_name(), "adaptec1");
  EXPECT_THROW(make_design("adaptec1", 0.5), std::invalid_argument);
}

// ---------------- bookshelf round trip ----------------

TEST(Bookshelf, RoundTripPreservesDesign) {
  TempDir tmp;
  db::Database orig = generate(small_spec());
  write_bookshelf(orig, tmp.path(), "unit");
  db::Database back = read_bookshelf_aux(tmp.path() + "/unit.aux");

  EXPECT_EQ(back.num_movable(), orig.num_movable());
  EXPECT_EQ(back.num_fixed(), orig.num_fixed());
  EXPECT_EQ(back.num_nets(), orig.num_nets());
  EXPECT_EQ(back.num_pins(), orig.num_pins());
  EXPECT_EQ(back.rows().size(), orig.rows().size());
  EXPECT_NEAR(back.hpwl(), orig.hpwl(), 1e-6 * orig.hpwl() + 1e-6);
  // Region recovered from rows.
  EXPECT_NEAR(back.region().hx, orig.region().hx, 1e-9);
  // Cell geometry by name.
  for (std::size_t c = 0; c < orig.num_physical(); c += 53) {
    const int id = back.cell_id(orig.cell_name(c));
    ASSERT_GE(id, 0);
    EXPECT_DOUBLE_EQ(back.width(id), orig.width(c));
    EXPECT_NEAR(back.x(id), orig.x(c), 1e-6);
  }
}

TEST(Bookshelf, PlWriteReadRoundTrip) {
  TempDir tmp;
  db::Database db = generate(small_spec());
  // Move everything, save, scramble, reload.
  std::vector<double> saved_x(db.num_physical());
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    db.set_position(c, db.x(c) + 1.5, db.y(c) + 2.5);
  }
  for (std::size_t c = 0; c < db.num_physical(); ++c) saved_x[c] = db.x(c);
  const std::string pl = tmp.path() + "/out.pl";
  write_pl(db, pl);
  for (std::size_t c = 0; c < db.num_movable(); ++c) db.set_position(c, 0, 0);
  read_pl_into(db, pl);
  for (std::size_t c = 0; c < db.num_physical(); ++c) {
    EXPECT_NEAR(db.x(c), saved_x[c], 1e-6) << db.cell_name(c);
  }
}

TEST(Bookshelf, MissingFileThrows) {
  EXPECT_THROW(read_bookshelf_aux("/nonexistent/dir/x.aux"), std::runtime_error);
}

TEST(Bookshelf, MalformedNodesDiagnostic) {
  TempDir tmp;
  std::ofstream(tmp.path() + "/bad.aux")
      << "RowBasedPlacement : bad.nodes bad.nets bad.wts bad.pl bad.scl\n";
  std::ofstream(tmp.path() + "/bad.nodes") << "UCLA nodes 1.0\n  o1\n";  // too few fields
  std::ofstream(tmp.path() + "/bad.nets") << "UCLA nets 1.0\n";
  std::ofstream(tmp.path() + "/bad.pl") << "UCLA pl 1.0\n";
  std::ofstream(tmp.path() + "/bad.scl") << "";
  try {
    read_bookshelf_aux(tmp.path() + "/bad.aux");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad.nodes"), std::string::npos);
  }
}

TEST(Bookshelf, CountMismatchDetected) {
  TempDir tmp;
  std::ofstream(tmp.path() + "/bad.aux")
      << "RowBasedPlacement : bad.nodes bad.nets bad.wts bad.pl bad.scl\n";
  std::ofstream(tmp.path() + "/bad.nodes")
      << "UCLA nodes 1.0\nNumNodes : 3\nNumTerminals : 0\n o1 2 2\n";
  std::ofstream(tmp.path() + "/bad.nets") << "UCLA nets 1.0\nNumNets : 0\n";
  std::ofstream(tmp.path() + "/bad.pl") << "UCLA pl 1.0\no1 0 0 : N\n";
  std::ofstream(tmp.path() + "/bad.scl") << "";
  EXPECT_THROW(read_bookshelf_aux(tmp.path() + "/bad.aux"), std::runtime_error);
}

TEST(Bookshelf, UnknownCellInNetThrows) {
  TempDir tmp;
  std::ofstream(tmp.path() + "/bad.aux")
      << "RowBasedPlacement : bad.nodes bad.nets bad.wts bad.pl bad.scl\n";
  std::ofstream(tmp.path() + "/bad.nodes")
      << "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n o1 2 2\n";
  std::ofstream(tmp.path() + "/bad.nets")
      << "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n"
      << " o1 I : 0 0\n oMISSING I : 0 0\n";
  std::ofstream(tmp.path() + "/bad.pl") << "UCLA pl 1.0\no1 0 0 : N\n";
  std::ofstream(tmp.path() + "/bad.scl") << "";
  EXPECT_THROW(read_bookshelf_aux(tmp.path() + "/bad.aux"), std::runtime_error);
}

// ---------------- parser negative paths (diagnostics) ----------------
//
// Every malformed input must fail with a `path:line: message` diagnostic (or
// `path: message` for file-level count checks) — never a crash or a silently
// half-parsed database.

std::string write_design(const TempDir& tmp, const std::string& nodes,
                         const std::string& nets,
                         const std::string& pl = "UCLA pl 1.0\no1 0 0 : N\n") {
  std::ofstream(tmp.path() + "/bad.aux")
      << "RowBasedPlacement : bad.nodes bad.nets bad.wts bad.pl bad.scl\n";
  std::ofstream(tmp.path() + "/bad.nodes") << nodes;
  std::ofstream(tmp.path() + "/bad.nets") << nets;
  std::ofstream(tmp.path() + "/bad.pl") << pl;
  std::ofstream(tmp.path() + "/bad.scl") << "";
  return tmp.path() + "/bad.aux";
}

const std::string kGoodNodes =
    "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n o1 2 2\n";
const std::string kGoodNets = "UCLA nets 1.0\nNumNets : 0\n";

void expect_diag(const std::string& aux, const std::string& needle) {
  try {
    read_bookshelf_aux(aux);
    FAIL() << "expected parse error containing '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(BookshelfDiag, TruncatedNetsReportsEofWithLine) {
  TempDir tmp;
  // NetDegree promises 2 pins but the file ends after 1.
  const std::string aux = write_design(
      tmp, kGoodNodes,
      "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n"
      " o1 I : 0 0\n");
  expect_diag(aux, "bad.nets:5: unexpected EOF inside net");
}

TEST(BookshelfDiag, NumNodesMismatchNamesBothCounts) {
  TempDir tmp;
  const std::string aux = write_design(
      tmp, "UCLA nodes 1.0\nNumNodes : 3\nNumTerminals : 0\n o1 2 2\n",
      kGoodNets);
  expect_diag(aux, "bad.nodes: NumNodes=3 but 1 nodes found");
}

TEST(BookshelfDiag, NumNetsMismatchReported) {
  TempDir tmp;
  const std::string aux = write_design(
      tmp, kGoodNodes,
      "UCLA nets 1.0\nNumNets : 5\nNumPins : 2\nNetDegree : 2 n0\n"
      " o1 I : 0 0\n o1 I : 1 1\n");
  expect_diag(aux, "bad.nets: NumNets mismatch");
}

TEST(BookshelfDiag, NonNumericNodeFieldWithLine) {
  TempDir tmp;
  const std::string aux = write_design(
      tmp, "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n o1 ww 2\n",
      kGoodNets);
  expect_diag(aux, "bad.nodes:4: expected a number, got 'ww'");
}

TEST(BookshelfDiag, MalformedPinLineWithLine) {
  TempDir tmp;
  // 4 tokens: neither the 2/3-token short form nor the 5-token offset form.
  const std::string aux = write_design(
      tmp, kGoodNodes,
      "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n"
      " o1 I : 0\n o1 I : 0 0\n");
  expect_diag(aux, "bad.nets:5: malformed pin line");
}

TEST(BookshelfDiag, UnexpectedTokenInNetsWithLine) {
  TempDir tmp;
  const std::string aux = write_design(
      tmp, kGoodNodes, "UCLA nets 1.0\nNumNets : 0\nGarbageToken here\n");
  expect_diag(aux, "bad.nets:3: unexpected token 'GarbageToken'");
}

TEST(BookshelfDiag, EmptyAuxReported) {
  TempDir tmp;
  std::ofstream(tmp.path() + "/bad.aux") << "";
  expect_diag(tmp.path() + "/bad.aux", "empty aux file");
}

TEST(BookshelfDiag, NodeLineTooShortWithLine) {
  TempDir tmp;
  const std::string aux = write_design(
      tmp, "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n o1\n", kGoodNets);
  expect_diag(aux, "bad.nodes:4: node line needs 'name width height'");
}

TEST(Bookshelf, FixedFlagInPlMakesCellFixed) {
  TempDir tmp;
  std::ofstream(tmp.path() + "/d.aux")
      << "RowBasedPlacement : d.nodes d.nets d.wts d.pl d.scl\n";
  std::ofstream(tmp.path() + "/d.nodes")
      << "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n a 2 2\n b 2 2\n";
  std::ofstream(tmp.path() + "/d.nets")
      << "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n"
      << " a I : 0 0\n b I : 0 0\n";
  std::ofstream(tmp.path() + "/d.pl")
      << "UCLA pl 1.0\na 0 0 : N\nb 10 10 : N /FIXED\n";
  std::ofstream(tmp.path() + "/d.scl")
      << "CoreRow Horizontal\n Coordinate : 0\n Height : 12\n Sitewidth : 1\n"
      << " SubrowOrigin : 0 NumSites : 50\nEnd\n";
  db::Database db = read_bookshelf_aux(tmp.path() + "/d.aux");
  EXPECT_EQ(db.num_movable(), 1u);
  EXPECT_EQ(db.num_fixed(), 1u);
  EXPECT_EQ(db.kind(db.cell_id("b")), db::CellKind::kFixed);
}

}  // namespace
}  // namespace xplace::io
