#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "db/database.h"
#include "io/generator.h"
#include "ops/density.h"
#include "ops/electrostatics.h"
#include "ops/netlist_view.h"
#include "ops/wirelength.h"
#include "ops/wirelength_tape.h"
#include "tensor/tape.h"
#include "util/rng.h"

namespace xplace::ops {
namespace {

db::Database small_design(std::uint64_t seed = 11) {
  io::GeneratorSpec spec;
  spec.name = "ops_unit";
  spec.num_cells = 300;
  spec.num_nets = 320;
  spec.num_macros = 2;
  spec.num_io_pads = 8;
  spec.seed = seed;
  return io::generate(spec);
}

std::vector<float> positions_x(const db::Database& db) {
  std::vector<float> x(db.num_cells_total());
  for (std::size_t c = 0; c < db.num_cells_total(); ++c)
    x[c] = static_cast<float>(db.x(c));
  return x;
}

std::vector<float> positions_y(const db::Database& db) {
  std::vector<float> y(db.num_cells_total());
  for (std::size_t c = 0; c < db.num_cells_total(); ++c)
    y[c] = static_cast<float>(db.y(c));
  return y;
}

// ---------------- wirelength ----------------

TEST(Wirelength, HpwlMatchesDatabase) {
  db::Database db = small_design();
  const NetlistView view = build_netlist_view(db);
  const auto x = positions_x(db), y = positions_y(db);
  const double h = hpwl(view, x.data(), y.data());
  EXPECT_NEAR(h, db.hpwl(), 1e-5 * db.hpwl());
}

TEST(Wirelength, WaUpperBoundsAndApproachesHpwl) {
  // WA is a smooth approximation from below/above depending on formulation;
  // with the stable two-sided form, WA underestimates HPWL and converges to
  // it as γ → 0.
  db::Database db = small_design();
  const NetlistView view = build_netlist_view(db);
  const auto x = positions_x(db), y = positions_y(db);
  const double h = hpwl(view, x.data(), y.data());
  const double wa_coarse = wa_wirelength(view, x.data(), y.data(), 50.0f);
  const double wa_fine = wa_wirelength(view, x.data(), y.data(), 1.0f);
  EXPECT_LE(wa_coarse, h);
  EXPECT_LE(wa_fine, h * (1 + 1e-6));
  EXPECT_GT(wa_fine, wa_coarse);  // tighter approximation for smaller γ
  EXPECT_NEAR(wa_fine, h, 0.05 * h);
}

TEST(Wirelength, FusedMatchesSeparateKernels) {
  db::Database db = small_design();
  const NetlistView view = build_netlist_view(db);
  const auto x = positions_x(db), y = positions_y(db);
  const float gamma = 8.0f;
  std::vector<float> gx_f(view.num_cells, 0.0f), gy_f(view.num_cells, 0.0f);
  const WirelengthSums sums =
      fused_wl_grad_hpwl(view, x.data(), y.data(), gamma, gx_f.data(), gy_f.data());
  EXPECT_NEAR(sums.wa, wa_wirelength(view, x.data(), y.data(), gamma),
              1e-6 * std::fabs(sums.wa));
  EXPECT_NEAR(sums.hpwl, hpwl(view, x.data(), y.data()), 1e-6 * sums.hpwl);
  std::vector<float> gx_s(view.num_cells, 0.0f), gy_s(view.num_cells, 0.0f);
  wa_gradient(view, x.data(), y.data(), gamma, gx_s.data(), gy_s.data());
  for (std::size_t c = 0; c < view.num_cells; ++c) {
    EXPECT_NEAR(gx_f[c], gx_s[c], 1e-5f + 1e-4f * std::fabs(gx_s[c]));
    EXPECT_NEAR(gy_f[c], gy_s[c], 1e-5f + 1e-4f * std::fabs(gy_s[c]));
  }
}

/// Finite-difference check of the WA gradient on a tiny hand design, over a
/// sweep of γ values (property-style).
class WaGradientCheck : public ::testing::TestWithParam<float> {};

TEST_P(WaGradientCheck, MatchesFiniteDifference) {
  const float gamma = GetParam();
  db::Database db;
  db.set_region({0, 0, 100, 100});
  std::vector<int> cells;
  Rng rng(77);
  for (int i = 0; i < 12; ++i) {
    cells.push_back(db.add_cell("c" + std::to_string(i), 2, 2, db::CellKind::kMovable));
  }
  for (int e = 0; e < 8; ++e) {
    const int net = db.add_net("n" + std::to_string(e));
    const int deg = 2 + e % 4;
    for (int k = 0; k < deg; ++k) {
      db.add_pin(net, cells[(e * 3 + k * 5) % 12], rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
  }
  db.finalize();
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    db.set_position(c, rng.uniform(10, 90), rng.uniform(10, 90));
  }
  const NetlistView view = build_netlist_view(db);
  auto x = positions_x(db), y = positions_y(db);

  std::vector<float> gx(view.num_cells, 0.0f), gy(view.num_cells, 0.0f);
  wa_gradient(view, x.data(), y.data(), gamma, gx.data(), gy.data());

  const float eps = 1e-2f;
  for (std::size_t c = 0; c < view.num_cells; ++c) {
    const float saved = x[c];
    x[c] = saved + eps;
    const double wp = wa_wirelength(view, x.data(), y.data(), gamma);
    x[c] = saved - eps;
    const double wm = wa_wirelength(view, x.data(), y.data(), gamma);
    x[c] = saved;
    const double fd = (wp - wm) / (2.0 * eps);
    EXPECT_NEAR(gx[c], fd, 5e-3 + 0.02 * std::fabs(fd)) << "cell " << c << " gamma " << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(GammaSweep, WaGradientCheck,
                         ::testing::Values(0.5f, 2.0f, 8.0f, 32.0f));

TEST(WirelengthTape, MatchesDirectKernels) {
  db::Database db = small_design(21);
  const NetlistView view = build_netlist_view(db);
  const auto x = positions_x(db), y = positions_y(db);
  const float gamma = 6.0f;

  TapeWirelength tape_wl(view);
  tensor::Tape tape;
  std::vector<float> gx_t(view.num_cells, 0.0f), gy_t(view.num_cells, 0.0f);
  const double wl_t =
      tape_wl.forward(tape, x.data(), y.data(), gamma, gx_t.data(), gy_t.data());
  EXPECT_GT(tape.size(), 0u);
  tape.backward();

  const double wl_d = wa_wirelength(view, x.data(), y.data(), gamma);
  EXPECT_NEAR(wl_t, wl_d, 1e-4 * std::fabs(wl_d));

  std::vector<float> gx_d(view.num_cells, 0.0f), gy_d(view.num_cells, 0.0f);
  wa_gradient(view, x.data(), y.data(), gamma, gx_d.data(), gy_d.data());
  double max_abs = 0.0;
  for (float g : gx_d) max_abs = std::max(max_abs, static_cast<double>(std::fabs(g)));
  for (std::size_t c = 0; c < view.num_cells; ++c) {
    EXPECT_NEAR(gx_t[c], gx_d[c], 1e-3 * max_abs + 1e-4) << c;
    EXPECT_NEAR(gy_t[c], gy_d[c], 1e-3 * max_abs + 1e-4) << c;
  }
  EXPECT_NEAR(tape_wl.hpwl_op(x.data(), y.data()), hpwl(view, x.data(), y.data()),
              1e-6 * db.hpwl());
}

TEST(Wirelength, DegenerateNetsIgnored) {
  db::Database db;
  db.set_region({0, 0, 10, 10});
  const int a = db.add_cell("a", 1, 1, db::CellKind::kMovable);
  const int b = db.add_cell("b", 1, 1, db::CellKind::kMovable);
  const int n1 = db.add_net("single");
  db.add_pin(n1, a, 0, 0);
  const int n2 = db.add_net("pair");
  db.add_pin(n2, a, 0, 0);
  db.add_pin(n2, b, 0, 0);
  db.finalize();
  db.set_position(a, 2, 2);
  db.set_position(b, 7, 5);
  const NetlistView view = build_netlist_view(db);
  EXPECT_EQ(view.net_mask[0], 0);
  EXPECT_EQ(view.net_mask[1], 1);
  const auto x = positions_x(db), y = positions_y(db);
  EXPECT_NEAR(hpwl(view, x.data(), y.data()), 8.0, 1e-9);
}

// ---------------- density ----------------

TEST(Density, MapConservesArea) {
  db::Database db = small_design(31);
  db.insert_fillers(3);
  DensityGrid grid(db, 32);
  const auto x = positions_x(db), y = positions_y(db);
  std::vector<double> map(grid.num_bins(), 0.0);
  grid.accumulate_range("test.acc", x.data(), y.data(), 0, db.num_movable(),
                        map.data(), true);
  // Smoothing preserves area by construction; the only loss is the clipped
  // part of √2·bin-expanded footprints of cells hugging the region boundary,
  // a sub-percent effect at this grid size.
  EXPECT_NEAR(grid.total_area(map.data()), db.total_movable_area(),
              5e-3 * db.total_movable_area());
}

TEST(Density, ExtractionEquivalence) {
  // D̃ = D + D_fl (extracted) must equal the jointly-accumulated map.
  db::Database db = small_design(32);
  db.insert_fillers(3);
  DensityGrid grid(db, 32);
  const auto x = positions_x(db), y = positions_y(db);
  std::vector<double> d(grid.num_bins()), dfl(grid.num_bins()), joint(grid.num_bins());
  grid.accumulate_range("d", x.data(), y.data(), 0, db.num_physical(), d.data(), true);
  grid.accumulate_range("dfl", x.data(), y.data(), db.num_physical(),
                        db.num_cells_total(), dfl.data(), true);
  grid.accumulate_range("joint", x.data(), y.data(), 0, db.num_cells_total(),
                        joint.data(), true);
  for (std::size_t b = 0; b < grid.num_bins(); ++b) {
    EXPECT_NEAR(d[b] + dfl[b], joint[b], 1e-9);
  }
}

TEST(Density, SingleCellExactOverlap) {
  // One big (unsmoothed) cell covering exactly 4 bins.
  db::Database db;
  db.set_region({0, 0, 64, 64});
  db.set_target_density(1.0);
  const int a = db.add_cell("a", 32, 32, db::CellKind::kMovable);
  const int n = db.add_net("n");
  db.add_pin(n, a, 0, 0);
  db.add_pin(n, a, 1, 1);
  db.finalize();
  db.set_position(a, 32, 32);  // centered: spans [16,48]²
  DensityGrid grid(db, 2);     // bins of 32x32
  const auto x = positions_x(db), y = positions_y(db);
  std::vector<double> map(grid.num_bins());
  grid.accumulate_range("t", x.data(), y.data(), 0, 1, map.data(), true);
  // Footprints are cached in single precision; allow float-level error.
  for (std::size_t b = 0; b < 4; ++b) EXPECT_NEAR(map[b], 0.25, 1e-6);
}

TEST(Density, OverflowZeroWhenUniform) {
  db::Database db;
  db.set_region({0, 0, 64, 64});
  db.set_target_density(0.8);
  const int a = db.add_cell("a", 32, 32, db::CellKind::kMovable);
  const int n = db.add_net("n");
  db.add_pin(n, a, 0, 0);
  db.add_pin(n, a, 1, 1);
  db.finalize();
  db.set_position(a, 32, 32);
  DensityGrid grid(db, 2);
  const auto x = positions_x(db), y = positions_y(db);
  std::vector<double> map(grid.num_bins());
  grid.accumulate_range("t", x.data(), y.data(), 0, 1, map.data(), true);
  EXPECT_NEAR(grid.overflow(map.data()), 0.0, 1e-12);  // 0.25 < 0.8 everywhere
}

TEST(Density, OverflowPositiveWhenClumped) {
  db::Database db = small_design(33);
  DensityGrid grid(db, 32);
  // Pile all movable cells in one corner.
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    db.set_position(c, db.region().lx + 5 + (c % 7), db.region().ly + 5 + (c % 5));
  }
  const auto x = positions_x(db), y = positions_y(db);
  std::vector<double> map(grid.num_bins());
  grid.accumulate_range("t", x.data(), y.data(), 0, db.num_physical(), map.data(), true);
  EXPECT_GT(grid.overflow(map.data()), 0.5);
}

TEST(Density, FixedCellsCappedAtTargetDensity) {
  db::Database db;
  db.set_region({0, 0, 64, 64});
  db.set_target_density(0.7);
  const int a = db.add_cell("m", 64, 64, db::CellKind::kFixed);
  const int mv = db.add_cell("c", 2, 2, db::CellKind::kMovable);
  const int n = db.add_net("n");
  db.add_pin(n, a, 0, 0);
  db.add_pin(n, mv, 0, 0);
  db.finalize();
  db.set_position(a, 32, 32);
  db.set_position(mv, 32, 32);
  DensityGrid grid(db, 4);
  std::vector<float> x{32, 32}, y{32, 32};
  std::vector<double> map(grid.num_bins());
  // Fixed only.
  grid.accumulate_range("t", x.data(), y.data(), db.num_movable(),
                        db.num_physical(), map.data(), true);
  for (std::size_t b = 0; b < grid.num_bins(); ++b) {
    EXPECT_NEAR(map[b], 0.7, 1e-6);  // capped at target (float footprints)
  }
  EXPECT_NEAR(grid.overflow(map.data()), 0.0, 1e-12);
}

// ---------------- electrostatics ----------------

TEST(Poisson, ResidualSatisfiesEquation) {
  // Build a smooth ρ, solve, and verify the discrete Laplacian of ψ ≈ -ρ̄.
  const int m = 32;
  const double bin = 1.0;
  std::vector<double> rho(m * m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      rho[i * m + j] = std::cos(std::numbers::pi * (2.0 * i + 1) / (2.0 * m)) *
                       std::cos(2.0 * std::numbers::pi * (2.0 * j + 1) / (2.0 * m));
    }
  }
  PoissonSolver solver(m, bin, bin);
  solver.solve(rho.data(), /*want_potential=*/true);
  const auto& psi = solver.psi();
  // Interior 5-point Laplacian.
  double max_resid = 0.0, max_rho = 0.0;
  for (int i = 2; i < m - 2; ++i) {
    for (int j = 2; j < m - 2; ++j) {
      const double lap = (psi[(i + 1) * m + j] + psi[(i - 1) * m + j] +
                          psi[i * m + j + 1] + psi[i * m + j - 1] -
                          4.0 * psi[i * m + j]) /
                         (bin * bin);
      max_resid = std::max(max_resid, std::fabs(lap + rho[i * m + j]));
      max_rho = std::max(max_rho, std::fabs(rho[i * m + j]));
    }
  }
  // Spectral solve of a band-limited ρ: the 5-point stencil itself carries
  // O(h²k²) discretization error, so allow a few percent.
  EXPECT_LT(max_resid, 0.08 * max_rho);
}

TEST(Poisson, FieldIsMinusGradPsi) {
  const int m = 32;
  Rng rng(5);
  std::vector<double> rho(m * m);
  for (auto& v : rho) v = rng.uniform(0.0, 1.0);
  PoissonSolver solver(m, 1.0, 1.0);
  solver.solve(rho.data(), true);
  const auto& psi = solver.psi();
  const auto& ex = solver.ex();
  double max_err = 0.0, max_e = 0.0;
  for (int i = 1; i < m - 1; ++i) {
    for (int j = 0; j < m; ++j) {
      const double grad = (psi[(i + 1) * m + j] - psi[(i - 1) * m + j]) / 2.0;
      max_err = std::max(max_err, std::fabs(ex[i * m + j] + grad));
      max_e = std::max(max_e, std::fabs(ex[i * m + j]));
    }
  }
  // Central differences on white-noise ρ are only first-order accurate at the
  // grid scale; verify direction and magnitude agreement within 35%.
  EXPECT_LT(max_err, 0.35 * max_e);
}

TEST(Poisson, UniformDensityHasZeroField) {
  const int m = 16;
  std::vector<double> rho(m * m, 0.42);
  PoissonSolver solver(m, 2.0, 2.0);
  solver.solve(rho.data(), true);
  for (double v : solver.ex()) EXPECT_NEAR(v, 0.0, 1e-9);
  for (double v : solver.ey()) EXPECT_NEAR(v, 0.0, 1e-9);
  for (double v : solver.psi()) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Poisson, FieldPointsAwayFromClump) {
  // A concentrated blob in the center: field left of center points -x (away),
  // right of center points +x.
  const int m = 32;
  std::vector<double> rho(m * m, 0.0);
  for (int i = 14; i < 18; ++i)
    for (int j = 14; j < 18; ++j) rho[i * m + j] = 4.0;
  PoissonSolver solver(m, 1.0, 1.0);
  solver.solve(rho.data(), false);
  const auto& ex = solver.ex();
  // ePlace sign convention: E = -∇ψ points from high density to low density,
  // so cells at x > center get positive Ex (pushed right).
  EXPECT_GT(ex[24 * m + 16], 0.0);
  EXPECT_LT(ex[8 * m + 16], 0.0);
  const auto& ey = solver.ey();
  EXPECT_GT(ey[16 * m + 24], 0.0);
  EXPECT_LT(ey[16 * m + 8], 0.0);
}

TEST(Poisson, EnergyDecreasesWhenSpread) {
  const int m = 16;
  std::vector<double> clumped(m * m, 0.0), spread(m * m, 0.5);
  for (int i = 6; i < 10; ++i)
    for (int j = 6; j < 10; ++j) clumped[i * m + j] = 8.0;
  PoissonSolver solver(m, 1.0, 1.0);
  solver.solve(clumped.data(), true);
  const double e_clumped = solver.energy(clumped.data());
  solver.solve(spread.data(), true);
  const double e_spread = solver.energy(spread.data());
  EXPECT_LT(e_spread, e_clumped);
  EXPECT_NEAR(e_spread, 0.0, 1e-9);
}

TEST(DensityForce, GatherMovesCellsApart) {
  // Two overlapping cells: the field gather must push them in opposite x
  // directions.
  db::Database db;
  db.set_region({0, 0, 64, 64});
  db.set_target_density(1.0);
  const int a = db.add_cell("a", 8, 8, db::CellKind::kMovable);
  const int b = db.add_cell("b", 8, 8, db::CellKind::kMovable);
  const int n = db.add_net("n");
  db.add_pin(n, a, 0, 0);
  db.add_pin(n, b, 0, 0);
  db.finalize();
  db.set_position(a, 30, 32);
  db.set_position(b, 34, 32);
  DensityGrid grid(db, 16);
  const auto x = positions_x(db), y = positions_y(db);
  std::vector<double> map(grid.num_bins());
  grid.accumulate_range("t", x.data(), y.data(), 0, 2, map.data(), true);
  PoissonSolver solver(16, grid.bin_w(), grid.bin_h());
  solver.solve(map.data(), false);
  std::vector<float> gx(2, 0.0f), gy(2, 0.0f);
  // Gradient of the density penalty: -q·E (descent direction +q·E spreads).
  grid.gather_field("t.gather", x.data(), y.data(), 0, 2, solver.ex().data(),
                    solver.ey().data(), -1.0f, gx.data(), gy.data());
  // Descent step -grad must move a left (-x) and b right (+x).
  EXPECT_LT(-gx[0], 0.0) << "a should move left";
  EXPECT_GT(-gx[1], 0.0) << "b should move right";
}

}  // namespace
}  // namespace xplace::ops
