// Tests for the durability & self-healing layer (DESIGN.md §13): the
// checksummed journal (torn tails, corruption, disk-full, atomic compaction),
// the recovery planner's record folding, server-layer fault-plan parsing, and
// the PlacementServer end to end — crash-equivalent restart resuming an
// interrupted job bit-for-bit from its XPCK spill, supervised retry with
// backoff + retune, load shedding under saturation, and the clean-shutdown
// marker.
//
// Determinism note: every served job here runs at thread count 1 (the server
// default), so the bitwise HPWL comparisons hold in every CI lane.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/guardian.h"
#include "core/placer.h"
#include "io/bookshelf.h"
#include "io/generator.h"
#include "io/journal.h"
#include "server/faults.h"
#include "server/recovery.h"
#include "server/server.h"

namespace xplace::server {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("xplace_recovery_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string journal_for(const fs::path& state_dir) {
  return (state_dir / "journal.xpjl").string();
}

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

io::JournalRecord make_record(JournalEvent type, std::uint64_t id,
                              std::string payload = {}) {
  io::JournalRecord rec;
  rec.type = static_cast<std::uint32_t>(type);
  rec.job_id = id;
  rec.time_s = wall_now();
  rec.payload = std::move(payload);
  return rec;
}

JobSpec demo_spec(long cells, int iters, bool full_flow = false) {
  JobSpec s;
  s.demo_cells = cells;
  s.max_iters = iters;
  s.full_flow = full_flow;
  return s;
}

// ---------------------------------------------------------------------------
// io::Journal framing
// ---------------------------------------------------------------------------

TEST(Journal, AppendReplayRoundTrip) {
  const fs::path dir = fresh_dir("roundtrip");
  const std::string path = (dir / "journal.xpjl").string();

  io::JournalWriter w;
  ASSERT_TRUE(w.open(path, /*truncate=*/true));
  ASSERT_TRUE(w.append(make_record(JournalEvent::kSubmit, 1, "payload-a")));
  ASSERT_TRUE(w.append(make_record(JournalEvent::kStart, 1)));
  io::JournalRecord big = make_record(JournalEvent::kCheckpoint, 2);
  big.payload.assign(4096, '\x7f');
  big.time_s = 1234.5;
  ASSERT_TRUE(w.append(big));
  EXPECT_EQ(w.records_written(), 3u);
  const std::uint64_t bytes = w.size_bytes();
  w.close();
  EXPECT_EQ(static_cast<std::uint64_t>(fs::file_size(path)), bytes);

  const io::JournalReplay replay = io::read_journal(path);
  EXPECT_FALSE(replay.missing);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_FALSE(replay.corrupt);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].type,
            static_cast<std::uint32_t>(JournalEvent::kSubmit));
  EXPECT_EQ(replay.records[0].job_id, 1u);
  EXPECT_EQ(replay.records[0].payload, "payload-a");
  EXPECT_EQ(replay.records[2].job_id, 2u);
  EXPECT_EQ(replay.records[2].time_s, 1234.5);
  EXPECT_EQ(replay.records[2].payload, big.payload);
  fs::remove_all(dir);
}

TEST(Journal, MissingFileIsAFreshStartNotAnError) {
  const io::JournalReplay replay =
      io::read_journal("/nonexistent/dir/journal.xpjl");
  EXPECT_TRUE(replay.missing);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_FALSE(replay.corrupt);
}

TEST(Journal, NonJournalFileThrows) {
  const fs::path dir = fresh_dir("badmagic");
  const std::string path = (dir / "journal.xpjl").string();
  std::ofstream(path) << "this is not a journal";
  EXPECT_THROW(io::read_journal(path), std::runtime_error);
  fs::remove_all(dir);
}

TEST(Journal, TornTailKeepsIntactRecordsAndKillsTheWriter) {
  const fs::path dir = fresh_dir("torn");
  const std::string path = (dir / "journal.xpjl").string();

  io::JournalWriter w;
  ASSERT_TRUE(w.open(path, /*truncate=*/true));
  ASSERT_TRUE(w.append(make_record(JournalEvent::kSubmit, 1, "a")));
  ASSERT_TRUE(w.append(make_record(JournalEvent::kStart, 1)));
  w.arm_torn_write();
  // The torn append fails (the frame only half-landed)...
  EXPECT_FALSE(w.append(make_record(JournalEvent::kCheckpoint, 1, "b")));
  // ...and the writer then behaves like the process died.
  EXPECT_FALSE(w.append(make_record(JournalEvent::kFinish, 1)));
  w.close();

  const io::JournalReplay replay = io::read_journal(path);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_FALSE(replay.corrupt);
  ASSERT_EQ(replay.records.size(), 2u);  // both acknowledged records survive
  EXPECT_EQ(replay.records[1].type,
            static_cast<std::uint32_t>(JournalEvent::kStart));
  fs::remove_all(dir);
}

TEST(Journal, CorruptChecksumStopsReplayAtTheBadFrame) {
  const fs::path dir = fresh_dir("corrupt");
  const std::string path = (dir / "journal.xpjl").string();

  io::JournalWriter w;
  ASSERT_TRUE(w.open(path, /*truncate=*/true));
  ASSERT_TRUE(w.append(make_record(JournalEvent::kSubmit, 1, "intact")));
  const std::uint64_t first_end = w.size_bytes();
  ASSERT_TRUE(w.append(make_record(JournalEvent::kSubmit, 2, "doomed")));
  ASSERT_TRUE(w.append(make_record(JournalEvent::kStart, 2)));
  w.close();

  // Flip one payload byte inside the second frame's body; its checksum no
  // longer matches, so replay must stop there and keep only record #1.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(first_end) + 4 + 20, std::ios::beg);
  f.put('X');
  f.close();

  const io::JournalReplay replay = io::read_journal(path);
  EXPECT_TRUE(replay.corrupt);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, "intact");
  fs::remove_all(dir);
}

TEST(Journal, DiskFullFailsAppendsWithoutWriting) {
  const fs::path dir = fresh_dir("diskfull");
  const std::string path = (dir / "journal.xpjl").string();

  io::JournalWriter w;
  ASSERT_TRUE(w.open(path, /*truncate=*/true));
  ASSERT_TRUE(w.append(make_record(JournalEvent::kSubmit, 1, "a")));
  const std::uint64_t before = w.size_bytes();
  w.arm_disk_full();
  EXPECT_FALSE(w.append(make_record(JournalEvent::kSubmit, 2, "b")));
  EXPECT_EQ(w.size_bytes(), before);
  w.close();

  const io::JournalReplay replay = io::read_journal(path);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  fs::remove_all(dir);
}

TEST(Journal, RewriteReplacesContentAtomically) {
  const fs::path dir = fresh_dir("rewrite");
  const std::string path = (dir / "journal.xpjl").string();

  io::JournalWriter w;
  ASSERT_TRUE(w.open(path, /*truncate=*/true));
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(w.append(make_record(JournalEvent::kSubmit,
                                     static_cast<std::uint64_t>(i + 1),
                                     std::string(256, 'x'))));
  }
  const std::uint64_t full_size = w.size_bytes();
  w.close();

  std::vector<io::JournalRecord> compact;
  compact.push_back(make_record(JournalEvent::kSubmit, 16, "survivor"));
  ASSERT_TRUE(io::rewrite_journal(path, compact));
  EXPECT_LT(static_cast<std::uint64_t>(fs::file_size(path)), full_size);

  const io::JournalReplay replay = io::read_journal(path);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_FALSE(replay.corrupt);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].job_id, 16u);
  EXPECT_EQ(replay.records[0].payload, "survivor");
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Recovery planning (record semantics + folding)
// ---------------------------------------------------------------------------

TEST(Recovery, PayloadCodecsRoundTripBitwise) {
  JobSpec spec;
  spec.aux = "designs/big.aux";
  spec.demo_cells = 0;
  spec.demo_seed = 42;
  spec.max_iters = 777;
  spec.grid = 96;
  spec.threads = 3;
  spec.full_flow = false;
  spec.priority = -5;
  spec.deadline_s = 12.5;
  spec.label = "codec_job";
  JobSpec out_spec;
  int attempt = -1;
  ASSERT_TRUE(decode_submit(encode_submit(spec, 2), &out_spec, &attempt));
  EXPECT_EQ(attempt, 2);
  EXPECT_EQ(out_spec.aux, spec.aux);
  EXPECT_EQ(out_spec.demo_seed, spec.demo_seed);
  EXPECT_EQ(out_spec.max_iters, spec.max_iters);
  EXPECT_EQ(out_spec.grid, spec.grid);
  EXPECT_EQ(out_spec.threads, spec.threads);
  EXPECT_EQ(out_spec.full_flow, spec.full_flow);
  EXPECT_EQ(out_spec.priority, spec.priority);
  EXPECT_EQ(out_spec.deadline_s, spec.deadline_s);
  EXPECT_EQ(out_spec.label, spec.label);

  FinishInfo fin;
  fin.state = JobState::kCancelled;
  fin.stop_reason = core::StopReason::kDeadline;
  fin.hpwl = 1.2345678901234567e6;  // bitwise survival, not text round-trip
  fin.overflow = 0.37;
  fin.iterations = 321;
  fin.gp_seconds = 4.25;
  fin.dp_hpwl = 9.75e5;
  fin.legalized = true;
  fin.error = "deadline";
  FinishInfo fout;
  ASSERT_TRUE(decode_finish(encode_finish(fin), &fout));
  EXPECT_EQ(fout.state, fin.state);
  EXPECT_EQ(fout.stop_reason, fin.stop_reason);
  EXPECT_EQ(std::memcmp(&fout.hpwl, &fin.hpwl, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&fout.dp_hpwl, &fin.dp_hpwl, sizeof(double)), 0);
  EXPECT_EQ(fout.iterations, fin.iterations);
  EXPECT_EQ(fout.legalized, fin.legalized);
  EXPECT_EQ(fout.error, fin.error);

  int next_iter = 0;
  std::string ck_path;
  ASSERT_TRUE(decode_checkpoint(encode_checkpoint(240, "/tmp/job7.xpck"),
                                &next_iter, &ck_path));
  EXPECT_EQ(next_iter, 240);
  EXPECT_EQ(ck_path, "/tmp/job7.xpck");

  RetryInfo retry;
  retry.attempt = 1;
  retry.backoff_s = 0.625;
  retry.reason = "diverged";
  RetryInfo rout;
  ASSERT_TRUE(decode_retry(encode_retry(retry), &rout));
  EXPECT_EQ(rout.attempt, 1);
  EXPECT_EQ(rout.backoff_s, 0.625);
  EXPECT_EQ(rout.reason, "diverged");

  // Truncated payloads are rejected, never mis-decoded.
  const std::string enc = encode_submit(spec, 0);
  EXPECT_FALSE(decode_submit(enc.substr(0, enc.size() / 2), &out_spec,
                             &attempt));
  EXPECT_FALSE(decode_finish("", &fout));
}

TEST(Recovery, InterleavedSubmitCancelReplayFoldsPerJob) {
  io::JournalReplay replay;
  // Job 1 runs and finishes; job 2 gets a dangling cancel (crash hit between
  // the cancel record and its settle); job 3 stays queued; job 4 was running
  // with a checkpoint down.
  replay.records.push_back(
      make_record(JournalEvent::kSubmit, 1, encode_submit(demo_spec(100, 10), 0)));
  replay.records.push_back(
      make_record(JournalEvent::kSubmit, 2, encode_submit(demo_spec(200, 20), 0)));
  replay.records.push_back(make_record(JournalEvent::kStart, 1));
  replay.records.push_back(
      make_record(JournalEvent::kSubmit, 3, encode_submit(demo_spec(300, 30), 0)));
  replay.records.push_back(make_record(JournalEvent::kCancel, 2));
  FinishInfo fin;
  fin.state = JobState::kDone;
  fin.hpwl = 123.0;
  replay.records.push_back(
      make_record(JournalEvent::kFinish, 1, encode_finish(fin)));
  replay.records.push_back(
      make_record(JournalEvent::kSubmit, 4, encode_submit(demo_spec(400, 40), 0)));
  replay.records.push_back(make_record(JournalEvent::kStart, 4));
  replay.records.push_back(make_record(
      JournalEvent::kCheckpoint, 4, encode_checkpoint(20, "/tmp/job4.xpck")));

  const RecoveryPlan plan = build_recovery_plan(replay);
  EXPECT_FALSE(plan.clean_shutdown);
  EXPECT_EQ(plan.max_id, 4u);
  ASSERT_EQ(plan.jobs.size(), 4u);
  // Submit order is preserved.
  EXPECT_EQ(plan.jobs[0].id, 1u);
  EXPECT_EQ(plan.jobs[1].id, 2u);
  EXPECT_EQ(plan.jobs[2].id, 3u);
  EXPECT_EQ(plan.jobs[3].id, 4u);

  EXPECT_TRUE(plan.jobs[0].terminal);
  EXPECT_EQ(plan.jobs[0].finish.state, JobState::kDone);
  EXPECT_EQ(plan.jobs[0].finish.hpwl, 123.0);

  EXPECT_FALSE(plan.jobs[1].terminal);
  EXPECT_TRUE(plan.jobs[1].cancel_requested);

  EXPECT_FALSE(plan.jobs[2].terminal);
  EXPECT_FALSE(plan.jobs[2].was_running);
  EXPECT_TRUE(plan.jobs[2].checkpoint_path.empty());

  EXPECT_TRUE(plan.jobs[3].was_running);
  EXPECT_EQ(plan.jobs[3].checkpoint_path, "/tmp/job4.xpck");
  EXPECT_EQ(plan.jobs[3].checkpoint_iter, 20);
}

TEST(Recovery, RetryRecordsRebuildAttemptHistory) {
  io::JournalReplay replay;
  replay.records.push_back(make_record(
      JournalEvent::kSubmit, 1, encode_submit(demo_spec(100, 10), 0)));
  replay.records.push_back(make_record(JournalEvent::kStart, 1));
  replay.records.push_back(make_record(
      JournalEvent::kCheckpoint, 1, encode_checkpoint(8, "/tmp/job1.xpck")));
  RetryInfo retry;
  retry.attempt = 1;
  retry.backoff_s = 0.5;
  retry.reason = "diverged";
  replay.records.push_back(
      make_record(JournalEvent::kRetry, 1, encode_retry(retry)));

  const RecoveryPlan plan = build_recovery_plan(replay);
  ASSERT_EQ(plan.jobs.size(), 1u);
  const RecoveredJob& rj = plan.jobs[0];
  EXPECT_EQ(rj.attempt, 1);
  // The retry abandons the diverged trajectory: no resume point, not running.
  EXPECT_FALSE(rj.was_running);
  EXPECT_TRUE(rj.checkpoint_path.empty());
  ASSERT_EQ(rj.attempts.size(), 1u);
  EXPECT_EQ(rj.attempts[0].number, 0);
  EXPECT_EQ(rj.attempts[0].outcome, "diverged");
  EXPECT_EQ(rj.attempts[0].backoff_s, 0.5);
}

TEST(Recovery, CleanShutdownMarkerOnlyCountsAsFinalRecord) {
  io::JournalReplay replay;
  replay.records.push_back(make_record(JournalEvent::kCleanShutdown, 0));
  replay.records.push_back(make_record(
      JournalEvent::kSubmit, 1, encode_submit(demo_spec(100, 10), 0)));
  EXPECT_FALSE(build_recovery_plan(replay).clean_shutdown);

  replay.records.push_back(make_record(JournalEvent::kCleanShutdown, 0));
  EXPECT_TRUE(build_recovery_plan(replay).clean_shutdown);
}

TEST(Recovery, CompactionReEmitsTheFoldedStateExactly) {
  io::JournalReplay replay;
  replay.records.push_back(make_record(
      JournalEvent::kSubmit, 1, encode_submit(demo_spec(100, 10), 0)));
  replay.records.push_back(make_record(JournalEvent::kStart, 1));
  RetryInfo retry;
  retry.attempt = 1;
  retry.backoff_s = 0.5;
  retry.reason = "diverged";
  replay.records.push_back(
      make_record(JournalEvent::kRetry, 1, encode_retry(retry)));
  replay.records.push_back(make_record(JournalEvent::kStart, 1));
  replay.records.push_back(make_record(
      JournalEvent::kCheckpoint, 1, encode_checkpoint(40, "/tmp/job1.xpck")));
  FinishInfo fin;
  fin.state = JobState::kDone;
  fin.hpwl = 456.0;
  replay.records.push_back(make_record(
      JournalEvent::kSubmit, 2, encode_submit(demo_spec(200, 20), 0)));
  replay.records.push_back(
      make_record(JournalEvent::kFinish, 2, encode_finish(fin)));

  const RecoveryPlan plan = build_recovery_plan(replay);

  // Compact, then fold the compacted records again: the second fold must
  // reconstruct the same per-job state (this is exactly what a second
  // restart reads).
  io::JournalReplay compacted;
  compacted.records = compaction_records(plan);
  EXPECT_LE(compacted.records.size(), replay.records.size());
  const RecoveryPlan plan2 = build_recovery_plan(compacted);

  ASSERT_EQ(plan2.jobs.size(), plan.jobs.size());
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    const RecoveredJob& a = plan.jobs[i];
    const RecoveredJob& b = plan2.jobs[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.attempt, b.attempt);
    EXPECT_EQ(a.was_running, b.was_running);
    EXPECT_EQ(a.checkpoint_path, b.checkpoint_path);
    EXPECT_EQ(a.checkpoint_iter, b.checkpoint_iter);
    EXPECT_EQ(a.terminal, b.terminal);
    ASSERT_EQ(a.attempts.size(), b.attempts.size());
    for (std::size_t k = 0; k < a.attempts.size(); ++k) {
      EXPECT_EQ(a.attempts[k].outcome, b.attempts[k].outcome);
      EXPECT_EQ(a.attempts[k].backoff_s, b.attempts[k].backoff_s);
    }
    if (a.terminal) {
      EXPECT_EQ(a.finish.state, b.finish.state);
      EXPECT_EQ(std::memcmp(&a.finish.hpwl, &b.finish.hpwl, sizeof(double)),
                0);
    }
  }
  EXPECT_EQ(plan2.max_id, plan.max_id);
}

// ---------------------------------------------------------------------------
// Server-layer fault plan
// ---------------------------------------------------------------------------

TEST(ServeFaultPlan, ParsesSharedGrammarAndSkipsGuardianItems) {
  const ServeFaultPlan plan = ServeFaultPlan::parse(
      "serve_crash@job:3,journal_torn,nonfinite_grad@iter:5,"
      "diverge@job:2,disk_full,alloc_fail@iter:9");
  ASSERT_EQ(plan.crash_after_checkpoint_of.size(), 1u);
  EXPECT_EQ(plan.crash_after_checkpoint_of[0], 3u);
  ASSERT_EQ(plan.diverge_jobs.size(), 1u);
  EXPECT_EQ(plan.diverge_jobs[0], 2u);
  EXPECT_TRUE(plan.journal_torn);
  EXPECT_TRUE(plan.disk_full);
  EXPECT_TRUE(plan.crash_armed_for(3));
  EXPECT_FALSE(plan.crash_armed_for(4));
  EXPECT_TRUE(plan.diverge_armed_for(2));

  EXPECT_TRUE(ServeFaultPlan::parse("").empty());
  EXPECT_TRUE(ServeFaultPlan::parse("nonfinite_grad@iter:5").empty());
  EXPECT_THROW(ServeFaultPlan::parse("serve_crash@job:banana"),
               std::invalid_argument);
  EXPECT_THROW(ServeFaultPlan::parse("diverge@job:"), std::invalid_argument);
}

TEST(Guardian, RetunedForRestartCompoundsAcrossAttempts) {
  const core::PlacerConfig base = core::PlacerConfig::xplace();
  const core::PlacerConfig same = core::retuned_for_restart(base, 0);
  // Attempt 0 is the identity: pow(x, 0) == 1.0 exactly, so the multiply
  // cannot perturb the config (bitwise determinism of first attempts).
  EXPECT_EQ(std::memcmp(&same.lambda_init_factor, &base.lambda_init_factor,
                        sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&same.initial_step_bins, &base.initial_step_bins,
                        sizeof(double)), 0);

  const core::PlacerConfig once = core::retuned_for_restart(base, 1);
  const core::PlacerConfig twice = core::retuned_for_restart(base, 2);
  EXPECT_DOUBLE_EQ(once.lambda_init_factor,
                   base.lambda_init_factor * base.guardian_lambda_shrink);
  EXPECT_DOUBLE_EQ(once.initial_step_bins,
                   base.initial_step_bins * base.guardian_step_shrink);
  EXPECT_LT(twice.lambda_init_factor, once.lambda_init_factor);
  EXPECT_LT(twice.initial_step_bins, once.initial_step_bins);
}

// ---------------------------------------------------------------------------
// PlacementServer end to end
// ---------------------------------------------------------------------------

/// The demo-job construction path (mirrors the server's make_demo_db) so the
/// direct reference runs below see the exact same database a served demo job
/// does.
db::Database build_demo_db(long cells, const fs::path& scratch) {
  io::GeneratorSpec gen;
  gen.name = "demo";
  gen.num_cells = static_cast<std::size_t>(cells);
  gen.num_nets = gen.num_cells + gen.num_cells / 20;
  gen.seed = 11;
  const db::Database generated = io::generate(gen);
  io::write_bookshelf(generated, scratch.string(), "demo");
  return io::read_bookshelf_aux((scratch / "demo.aux").string());
}

TEST(PlacementServerRecovery, RestartResumesInterruptedJobBitForBit) {
  const long cells = 300;
  const int iters = 60;
  const int spill_every = 20;
  const fs::path state = fresh_dir("resume_state");
  const fs::path scratch = fresh_dir("resume_scratch");

  // Reference: the uninterrupted trajectory, straight through the core.
  core::PlacerConfig pcfg = core::PlacerConfig::xplace();
  pcfg.max_iters = iters;
  pcfg.threads = 1;
  double ref_hpwl = 0.0;
  {
    db::Database db = build_demo_db(cells, scratch);
    core::GlobalPlacer placer(db, pcfg);
    ref_hpwl = placer.run().hpwl;
  }

  // Crash-equivalent state: run the same trajectory only up to the spill
  // boundary, leaving the XPCK a dying daemon would have journaled last,
  // then write the journal exactly as the daemon's append path would.
  const std::string ck_path = (state / "job1.xpck").string();
  {
    core::PlacerConfig partial = pcfg;
    partial.max_iters = spill_every;
    partial.checkpoint_out = ck_path;
    partial.checkpoint_period = spill_every;
    db::Database db = build_demo_db(cells, scratch);
    core::GlobalPlacer placer(db, partial);
    placer.run();
  }
  ASSERT_TRUE(fs::exists(ck_path));

  JobSpec spec = demo_spec(cells, iters);
  {
    io::JournalWriter w;
    ASSERT_TRUE(w.open((state / "journal.xpjl").string(), /*truncate=*/true));
    ASSERT_TRUE(w.append(make_record(JournalEvent::kSubmit, 1,
                                     encode_submit(spec, 0))));
    ASSERT_TRUE(w.append(make_record(JournalEvent::kStart, 1)));
    ASSERT_TRUE(w.append(make_record(JournalEvent::kCheckpoint, 1,
                                     encode_checkpoint(spill_every, ck_path))));
    w.close();
  }

  // Restart: the server must replay the journal, resume job 1 from the spill,
  // and land on the reference HPWL to the last bit.
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.state_dir = state.string();
  cfg.spill_period = spill_every;
  PlacementServer srv(cfg);
  EXPECT_EQ(srv.stats().recovered, 1u);

  const auto rec = srv.wait(1, 300.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kDone);
  EXPECT_TRUE(rec->recovered);
  EXPECT_EQ(rec->resume_from, ck_path);
  EXPECT_EQ(std::memcmp(&rec->hpwl, &ref_hpwl, sizeof(double)), 0)
      << "resumed hpwl " << rec->hpwl << " vs reference " << ref_hpwl;
  srv.shutdown(true);

  fs::remove_all(state);
  fs::remove_all(scratch);
}

TEST(PlacementServerRecovery, QueuedJobsRecoverInPriorityOrder) {
  const fs::path state = fresh_dir("order_state");
  {
    io::JournalWriter w;
    ASSERT_TRUE(w.open((state / "journal.xpjl").string(), /*truncate=*/true));
    JobSpec low = demo_spec(200, 30);
    JobSpec high = demo_spec(200, 30);
    high.priority = 10;
    // Submit order: low(1), high(2), low(3). Pop order after recovery must be
    // priority-first, FIFO within a priority: 2, 1, 3.
    ASSERT_TRUE(w.append(
        make_record(JournalEvent::kSubmit, 1, encode_submit(low, 0))));
    ASSERT_TRUE(w.append(
        make_record(JournalEvent::kSubmit, 2, encode_submit(high, 0))));
    ASSERT_TRUE(w.append(
        make_record(JournalEvent::kSubmit, 3, encode_submit(low, 0))));
    w.close();
  }

  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.state_dir = state.string();
  PlacementServer srv(cfg);
  EXPECT_EQ(srv.stats().recovered, 3u);
  for (std::uint64_t id : {1, 2, 3}) {
    const auto rec = srv.wait(id, 300.0);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->state, JobState::kDone) << "job " << id;
    EXPECT_TRUE(rec->recovered);
  }
  const double s1 = srv.status(1)->started_s;
  const double s2 = srv.status(2)->started_s;
  const double s3 = srv.status(3)->started_s;
  EXPECT_LE(s2, s1);  // high priority ran first
  EXPECT_LE(s1, s3);  // FIFO within equal priority
  // New submissions allocate past the recovered ids.
  const auto out = srv.submit(demo_spec(200, 20));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.id, 4u);
  srv.shutdown(true);
  fs::remove_all(state);
}

TEST(PlacementServerRecovery, CleanShutdownMarkerMakesTheNextStartClean) {
  const fs::path state = fresh_dir("clean_state");
  const std::string journal_path = (state / "journal.xpjl").string();
  {
    ServerConfig cfg;
    cfg.max_concurrency = 1;
    cfg.state_dir = state.string();
    PlacementServer srv(cfg);
    const auto out = srv.submit(demo_spec(200, 30));
    ASSERT_TRUE(out.ok);
    ASSERT_TRUE(srv.wait(out.id, 120.0).has_value());
    srv.shutdown(/*drain=*/true);
  }
  {
    const io::JournalReplay replay = io::read_journal(journal_path);
    ASSERT_FALSE(replay.records.empty());
    EXPECT_EQ(replay.records.back().type,
              static_cast<std::uint32_t>(JournalEvent::kCleanShutdown));
  }
  // The next start sees the marker: no recovery, truncated journal, and the
  // previous lifetime's records are gone.
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.state_dir = state.string();
  PlacementServer srv(cfg);
  const auto s = srv.stats();
  EXPECT_EQ(s.recovered, 0u);
  EXPECT_TRUE(s.journal_active);
  EXPECT_EQ(s.journal_records, 0u);
  EXPECT_FALSE(srv.status(1).has_value());
  srv.shutdown(true);
  fs::remove_all(state);
}

TEST(PlacementServerRecovery, RestartRestoresTerminalRecordsVerbatim) {
  const fs::path state = fresh_dir("terminal_state");
  double done_hpwl = 0.0;
  {
    ServerConfig cfg;
    cfg.max_concurrency = 1;
    cfg.state_dir = state.string();
    PlacementServer srv(cfg);
    const auto out = srv.submit(demo_spec(200, 30));
    ASSERT_TRUE(out.ok);
    const auto rec = srv.wait(out.id, 120.0);
    ASSERT_TRUE(rec.has_value());
    ASSERT_EQ(rec->state, JobState::kDone);
    done_hpwl = rec->hpwl;
  }
  // The destructor appended a clean marker (every job was terminal). Strip
  // it to simulate a kill that landed after the finish record but before the
  // shutdown path ran.
  {
    const io::JournalReplay replay = io::read_journal(journal_for(state));
    std::vector<io::JournalRecord> records = replay.records;
    ASSERT_FALSE(records.empty());
    if (records.back().type ==
        static_cast<std::uint32_t>(JournalEvent::kCleanShutdown)) {
      records.pop_back();
    }
    ASSERT_TRUE(io::rewrite_journal(journal_for(state), records));
  }

  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.state_dir = state.string();
  PlacementServer srv(cfg);
  EXPECT_EQ(srv.stats().recovered, 0u);  // nothing live, only history
  const auto rec = srv.status(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kDone);
  EXPECT_TRUE(rec->recovered);
  EXPECT_EQ(std::memcmp(&rec->hpwl, &done_hpwl, sizeof(double)), 0);
  srv.shutdown(true);
  fs::remove_all(state);
}

TEST(PlacementServerRecovery, DivergedJobIsRetriedWithBackoffAndRetune) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.max_retries = 2;
  cfg.retry_backoff_s = 0.01;  // keep the test fast
  cfg.faults.diverge_jobs = {1};
  PlacementServer srv(cfg);

  const auto out = srv.submit(demo_spec(300, 60));
  ASSERT_TRUE(out.ok) << out.error;
  const auto rec = srv.wait(out.id, 300.0);
  ASSERT_TRUE(rec.has_value());
  // Attempt 0 diverged (injected), the supervisor re-admitted with backoff
  // and the λ/step retune, and attempt 1 — fault-free by the injection
  // contract — completed.
  EXPECT_EQ(rec->state, JobState::kDone);
  EXPECT_EQ(rec->attempt, 1);
  ASSERT_EQ(rec->attempts.size(), 1u);
  EXPECT_EQ(rec->attempts[0].number, 0);
  EXPECT_EQ(rec->attempts[0].outcome, "diverged");
  EXPECT_GT(rec->attempts[0].backoff_s, 0.0);
  EXPECT_TRUE(std::isfinite(rec->hpwl));
  EXPECT_GT(rec->hpwl, 0.0);

  const auto s = srv.stats();
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.completed, 1u);
  srv.shutdown(true);
}

TEST(PlacementServerRecovery, SaturationShedsStrictlyLowerPriorityWork) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.queue_capacity = 1;
  PlacementServer srv(cfg);

  // Occupy the single worker slot with a long job, then fill the queue.
  // Wait until the worker actually popped it (streamed events prove the GP
  // loop is running) so the queue is genuinely empty before the next submit.
  const auto running = srv.submit(demo_spec(1500, 5000));
  ASSERT_TRUE(running.ok);
  const auto batch = srv.events(running.id, 0, 60.0);
  ASSERT_TRUE(batch.has_value());
  ASSERT_FALSE(batch->terminal);
  JobSpec low = demo_spec(300, 40);
  low.priority = 0;
  const auto victim = srv.submit(low);
  ASSERT_TRUE(victim.ok);

  // Higher-priority work displaces the weakest queued job...
  JobSpec high = demo_spec(300, 40);
  high.priority = 5;
  const auto winner = srv.submit(high);
  ASSERT_TRUE(winner.ok) << winner.error;
  const auto shed_rec = srv.status(victim.id);
  ASSERT_TRUE(shed_rec.has_value());
  EXPECT_EQ(shed_rec->state, JobState::kShed);
  EXPECT_NE(shed_rec->error.find("shed"), std::string::npos);
  EXPECT_EQ(srv.stats().shed, 1u);

  // ...but equal priority does not: no strictly-lower victim → plain reject.
  const auto rejected = srv.submit(high);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(srv.status(winner.id)->state, JobState::kShed);

  std::string err;
  ASSERT_TRUE(srv.cancel(running.id, &err)) << err;
  srv.shutdown(true);
}

TEST(PlacementServerRecovery, DegradedJournalDegradesAdmissionNotService) {
  const fs::path state = fresh_dir("degraded_state");
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.state_dir = state.string();
  cfg.faults.disk_full = true;  // every journal append fails (ENOSPC story)
  PlacementServer srv(cfg);

  // The first submit's journal append fails → durability degrades, but the
  // job itself still runs to completion from memory.
  const auto out = srv.submit(demo_spec(200, 30));
  ASSERT_TRUE(out.ok) << out.error;
  const auto rec = srv.wait(out.id, 120.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kDone);
  EXPECT_TRUE(srv.stats().journal_degraded);

  // With durability gone and nothing sheddable queued, admission rejects.
  const auto refused = srv.submit(demo_spec(200, 30));
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("journal"), std::string::npos);
  srv.shutdown(true);
  fs::remove_all(state);
}

}  // namespace
}  // namespace xplace::server
