// Tests for the extension modules: multi-threaded kernels, visualization
// writers, .wts net weights, and congestion-driven inflation.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "io/bookshelf.h"
#include "io/generator.h"
#include "io/plot.h"
#include "ops/density.h"
#include "ops/parallel.h"
#include "route/congestion.h"
#include "route/inflation.h"
#include "util/thread_pool.h"

namespace xplace {
namespace {

db::Database make_db(std::size_t cells = 1500, std::uint64_t seed = 71) {
  io::GeneratorSpec spec;
  spec.name = "ext_unit";
  spec.num_cells = cells;
  spec.num_nets = cells + 60;
  spec.seed = seed;
  db::Database db = io::generate(spec);
  db.insert_fillers(1);
  return db;
}

void get_positions(const db::Database& db, std::vector<float>& x,
                   std::vector<float>& y) {
  x.resize(db.num_cells_total());
  y.resize(db.num_cells_total());
  for (std::size_t c = 0; c < db.num_cells_total(); ++c) {
    x[c] = static_cast<float>(db.x(c));
    y[c] = static_cast<float>(db.y(c));
  }
}

// ---------------- parallel kernels ----------------

class ParallelKernels : public ::testing::TestWithParam<int> {};

TEST_P(ParallelKernels, FusedWirelengthMatchesSerial) {
  const int threads = GetParam();
  db::Database db = make_db();
  const ops::NetlistView view = ops::build_netlist_view(db);
  std::vector<float> x, y;
  get_positions(db, x, y);

  std::vector<float> gx_s(db.num_cells_total(), 0.0f), gy_s(db.num_cells_total(), 0.0f);
  const ops::WirelengthSums serial =
      ops::fused_wl_grad_hpwl(view, x.data(), y.data(), 6.0f, gx_s.data(), gy_s.data());

  ThreadPool pool(threads);
  std::vector<float> gx_p(db.num_cells_total(), 0.0f), gy_p(db.num_cells_total(), 0.0f);
  const ops::WirelengthSums par = ops::fused_wl_grad_hpwl_mt(
      view, x.data(), y.data(), 6.0f, gx_p.data(), gy_p.data(), pool);

  EXPECT_NEAR(par.wa, serial.wa, 1e-6 * std::fabs(serial.wa));
  EXPECT_NEAR(par.hpwl, serial.hpwl, 1e-6 * serial.hpwl);
  float max_g = 0.0f;
  for (float g : gx_s) max_g = std::max(max_g, std::fabs(g));
  for (std::size_t c = 0; c < view.num_cells; ++c) {
    EXPECT_NEAR(gx_p[c], gx_s[c], 1e-4f * max_g + 1e-6f) << c;
    EXPECT_NEAR(gy_p[c], gy_s[c], 1e-4f * max_g + 1e-6f) << c;
  }
}

TEST_P(ParallelKernels, DensityScatterMatchesSerial) {
  const int threads = GetParam();
  db::Database db = make_db();
  ops::DensityGrid grid(db, 64);
  std::vector<float> x, y;
  get_positions(db, x, y);

  std::vector<double> serial(grid.num_bins());
  grid.accumulate_range("s", x.data(), y.data(), 0, db.num_cells_total(),
                        serial.data(), true);
  ThreadPool pool(threads);
  std::vector<double> par(grid.num_bins());
  ops::accumulate_range_mt(grid, "p", x.data(), y.data(), 0,
                           db.num_cells_total(), par.data(), true, pool);
  for (std::size_t b = 0; b < grid.num_bins(); ++b) {
    EXPECT_NEAR(par[b], serial[b], 1e-9 + 1e-9 * std::fabs(serial[b])) << b;
  }
}

TEST_P(ParallelKernels, GatherMatchesSerial) {
  const int threads = GetParam();
  db::Database db = make_db();
  ops::DensityGrid grid(db, 64);
  std::vector<float> x, y;
  get_positions(db, x, y);
  // Synthetic field.
  std::vector<double> ex(grid.num_bins()), ey(grid.num_bins());
  for (std::size_t b = 0; b < grid.num_bins(); ++b) {
    ex[b] = std::sin(0.01 * static_cast<double>(b));
    ey[b] = std::cos(0.013 * static_cast<double>(b));
  }
  std::vector<float> gx_s(db.num_cells_total(), 0.0f), gy_s(db.num_cells_total(), 0.0f);
  grid.gather_field("s", x.data(), y.data(), 0, db.num_movable(), ex.data(),
                    ey.data(), -1.0f, gx_s.data(), gy_s.data());
  ThreadPool pool(threads);
  std::vector<float> gx_p(db.num_cells_total(), 0.0f), gy_p(db.num_cells_total(), 0.0f);
  ops::gather_field_mt(grid, "p", x.data(), y.data(), 0, db.num_movable(),
                       ex.data(), ey.data(), -1.0f, gx_p.data(), gy_p.data(),
                       pool);
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    EXPECT_NEAR(gx_p[c], gx_s[c], 1e-6f) << c;
    EXPECT_NEAR(gy_p[c], gy_s[c], 1e-6f) << c;
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelKernels, ::testing::Values(1, 2, 4));

TEST(ParallelKernels, DeterministicForFixedPoolSize) {
  db::Database db = make_db();
  const ops::NetlistView view = ops::build_netlist_view(db);
  std::vector<float> x, y;
  get_positions(db, x, y);
  ThreadPool pool(3);
  std::vector<float> g1(db.num_cells_total(), 0.0f), g2(db.num_cells_total(), 0.0f);
  std::vector<float> h1(db.num_cells_total(), 0.0f), h2(db.num_cells_total(), 0.0f);
  const auto r1 = ops::fused_wl_grad_hpwl_mt(view, x.data(), y.data(), 6.0f,
                                             g1.data(), h1.data(), pool);
  const auto r2 = ops::fused_wl_grad_hpwl_mt(view, x.data(), y.data(), 6.0f,
                                             g2.data(), h2.data(), pool);
  EXPECT_EQ(r1.wa, r2.wa);
  EXPECT_EQ(r1.hpwl, r2.hpwl);
  for (std::size_t c = 0; c < view.num_cells; ++c) {
    ASSERT_EQ(g1[c], g2[c]);
    ASSERT_EQ(h1[c], h2[c]);
  }
}

// ---------------- plotting ----------------

TEST(Plot, SvgContainsCellsAndValidStructure) {
  db::Database db = make_db(200, 3);
  const std::string path = testing::TempDir() + "/place.svg";
  io::SvgOptions opts;
  opts.draw_nets = true;
  opts.max_nets = 20;
  io::write_placement_svg(db, path, opts);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_NE(content.find("</svg>"), std::string::npos);
  // One rect per movable + fixed cell at least.
  std::size_t rects = 0;
  for (std::size_t pos = 0; (pos = content.find("<rect", pos)) != std::string::npos;
       ++pos) {
    ++rects;
  }
  EXPECT_GT(rects, db.num_physical());
}

TEST(Plot, PpmHeaderAndSize) {
  const int m = 16;
  std::vector<double> map(m * m);
  for (int i = 0; i < m * m; ++i) map[i] = i;
  const std::string path = testing::TempDir() + "/density.ppm";
  io::write_density_ppm(map, m, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxv;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, m);
  EXPECT_EQ(h, m);
  EXPECT_EQ(maxv, 255);
  in.get();  // single whitespace
  std::vector<char> pixels(static_cast<std::size_t>(m) * m * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
}

TEST(Plot, SignedMapUsesDivergingColors) {
  const int m = 8;
  std::vector<double> map(m * m, 0.0);
  map[0] = -1.0;   // strongly negative → blue
  map[m * m - 1] = 1.0;  // strongly positive → red
  const std::string path = testing::TempDir() + "/field.ppm";
  io::write_signed_map_ppm(map, m, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);  // P6
  std::getline(in, line);  // dims
  std::getline(in, line);  // maxval
  std::vector<unsigned char> px(static_cast<std::size_t>(m) * m * 3);
  in.read(reinterpret_cast<char*>(px.data()), static_cast<std::streamsize>(px.size()));
  // map[0] = (ix=0, iy=0) → bottom-left → image row m-1, col 0.
  const std::size_t bottom_left = (static_cast<std::size_t>(m - 1) * m + 0) * 3;
  EXPECT_LT(px[bottom_left], 100);        // low red
  EXPECT_EQ(px[bottom_left + 2], 255);    // full blue
  // map[last] = (ix=m-1, iy=m-1) → top-right → row 0, col m-1.
  const std::size_t top_right = (static_cast<std::size_t>(m - 1)) * 3;
  EXPECT_EQ(px[top_right], 255);          // full red
  EXPECT_LT(px[top_right + 2], 100);      // low blue
}

// ---------------- .wts net weights ----------------

TEST(Wts, WeightsSurviveRoundTripAndScaleHpwl) {
  namespace fs = std::filesystem;
  const std::string dir = testing::TempDir() + "/wts_test";
  fs::create_directories(dir);
  io::GeneratorSpec spec;
  spec.name = "wts";
  spec.num_cells = 100;
  spec.num_nets = 110;
  spec.seed = 5;
  db::Database orig = io::generate(spec);
  io::write_bookshelf(orig, dir, "wts");
  // Overwrite the .wts with non-trivial weights.
  {
    std::ofstream out(dir + "/wts.wts");
    out << "UCLA wts 1.0\n";
    for (std::size_t e = 0; e < orig.num_nets(); ++e) {
      out << orig.net_name(e) << " " << (e % 3 == 0 ? 2.5 : 1.0) << "\n";
    }
  }
  db::Database back = io::read_bookshelf_aux(dir + "/wts.aux");
  double expected = 0.0;
  // Verify weights and the weighted HPWL.
  for (std::size_t e = 0; e < back.num_nets(); ++e) {
    const double w = back.net_weight(e);
    EXPECT_TRUE(w == 2.5 || w == 1.0);
    expected += w * back.net_hpwl(e);
  }
  EXPECT_NEAR(back.hpwl(), expected, 1e-9 * expected);
  EXPECT_GT(back.hpwl(), orig.hpwl());  // some weights > 1
}

// ---------------- inflation ----------------

TEST(Inflation, FactorsTrackCongestion) {
  db::Database db = make_db(800, 11);
  route::CongestionConfig ccfg;
  ccfg.grid = 16;
  ccfg.tracks_per_gcell = 2.0;  // tight: guaranteed congestion
  const route::CongestionResult res = route::estimate_congestion(db, ccfg);
  const auto factors = route::compute_inflation_factors(db, res);
  ASSERT_EQ(factors.size(), db.num_movable());
  double max_f = 1.0;
  for (double f : factors) {
    EXPECT_GE(f, 1.0);
    EXPECT_LE(f, route::InflationConfig{}.max_factor);
    max_f = std::max(max_f, f);
  }
  EXPECT_GT(max_f, 1.0) << "tight capacity must inflate something";
}

TEST(Inflation, NoInflationWithAmpleCapacity) {
  db::Database db = make_db(400, 13);
  route::CongestionConfig ccfg;
  ccfg.grid = 16;
  ccfg.tracks_per_gcell = 1e6;
  const auto factors = route::compute_inflation_factors(
      db, route::estimate_congestion(db, ccfg));
  for (double f : factors) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(Inflation, ApplyGrowsAreaWithinBudget) {
  io::GeneratorSpec spec;
  spec.name = "infl";
  spec.num_cells = 500;
  spec.num_nets = 520;
  spec.seed = 17;
  db::Database db = io::generate(spec);  // no fillers yet
  std::vector<double> factors(db.num_movable(), 1.5);
  const double before = db.total_movable_area();
  const double growth = route::apply_inflation(db, factors);
  EXPECT_GT(growth, 1.0);
  EXPECT_NEAR(db.total_movable_area(), before * growth, 1e-6 * before);
  // Budget respected.
  const double free_area = db.region().area() - db.fixed_area_in_region();
  EXPECT_LE(db.total_movable_area(), 0.96 * db.target_density() * free_area);
}

TEST(Inflation, ScaleWidthGuards) {
  db::Database db = make_db(100, 19);  // fillers inserted
  EXPECT_THROW(db.scale_cell_width(0, 1.2), std::logic_error);  // after fillers
  io::GeneratorSpec spec;
  spec.name = "guard";
  spec.num_cells = 50;
  spec.num_nets = 60;
  spec.seed = 23;
  db::Database fresh = io::generate(spec);
  EXPECT_THROW(fresh.scale_cell_width(fresh.num_movable(), 1.2),
               std::invalid_argument);  // fixed cell
  EXPECT_THROW(fresh.scale_cell_width(0, 0.0), std::invalid_argument);
  const double w0 = fresh.width(0);
  fresh.scale_cell_width(0, 2.0);
  EXPECT_DOUBLE_EQ(fresh.width(0), 2.0 * w0);
}

}  // namespace
}  // namespace xplace
