// Tests for the multi-tenant design store (DESIGN.md §14): content-addressed
// hashing (demo generator keys and aux file bytes), parse-once snapshot
// caching with copy-on-write materialization, bitwise cached-vs-fresh GP
// parity, concurrent snapshot sharing, LRU eviction + pin semantics, the
// server's submit-batch sweep API with (design, config) result dedup, and
// design/batch recovery from fabricated journals.
//
// Determinism note: every placement here runs at thread count 1 (the server
// default), so the bitwise comparisons hold in every CI lane.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/placer.h"
#include "db/design_snapshot.h"
#include "io/bookshelf.h"
#include "io/generator.h"
#include "io/journal.h"
#include "server/design_store.h"
#include "server/recovery.h"
#include "server/server.h"

namespace xplace::server {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("xplace_design_store_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Writes a small generated design to disk and returns its .aux path.
std::string write_demo_aux(const fs::path& dir, std::size_t cells,
                           std::uint64_t seed) {
  io::GeneratorSpec gen;
  gen.name = "demo";
  gen.num_cells = cells;
  gen.num_nets = cells + cells / 20;
  gen.seed = seed;
  const db::Database db = io::generate(gen);
  io::write_bookshelf(db, dir.string(), "demo");
  return (dir / "demo.aux").string();
}

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

TEST(DesignHash, DemoKeyIsDeterministicAndInputSensitive) {
  const std::uint64_t h = io::demo_content_hash(500, 11);
  EXPECT_EQ(h, io::demo_content_hash(500, 11));
  EXPECT_NE(h, io::demo_content_hash(501, 11));
  EXPECT_NE(h, io::demo_content_hash(500, 12));
  EXPECT_NE(h, 0u);
}

TEST(DesignHash, AuxHashTracksFileBytes) {
  const fs::path dir = fresh_dir("auxhash");
  const std::string aux = write_demo_aux(dir, 120, 7);
  const std::uint64_t h1 = io::hash_bookshelf_aux(aux);
  EXPECT_EQ(h1, io::hash_bookshelf_aux(aux));

  // Any byte change in a component file renames the content.
  {
    std::ofstream nodes((dir / "demo.nodes").string(), std::ios::app);
    nodes << "\n# trailing comment\n";
  }
  const std::uint64_t h2 = io::hash_bookshelf_aux(aux);
  EXPECT_NE(h1, h2);
  EXPECT_THROW(io::hash_bookshelf_aux((dir / "missing.aux").string()),
               std::exception);
  fs::remove_all(dir);
}

TEST(DesignHash, SnapshotCarriesHashAndGeometry) {
  const auto snap = io::make_demo_snapshot(150, 5);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->content_hash, io::demo_content_hash(150, 5));
  EXPECT_EQ(snap->num_cells(), snap->base.num_physical());
  EXPECT_GT(snap->num_nets(), 0u);
  EXPECT_GT(snap->resident_bytes, 0u);
  EXPECT_EQ(snap->source, "demo:150:5");
}

// ---------------------------------------------------------------------------
// Cached-vs-fresh parity (the tentpole's core guarantee)
// ---------------------------------------------------------------------------

TEST(DesignSnapshot, CachedRunIsBitIdenticalToFreshParse) {
  const fs::path dir = fresh_dir("parity");
  const std::string aux = write_demo_aux(dir, 220, 3);

  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 32;
  cfg.max_iters = 30;
  cfg.threads = 1;

  // Fresh parse straight into a mutable Database (the pre-store path).
  db::Database fresh = io::read_bookshelf_aux(aux);
  core::GlobalPlacer p1(fresh, cfg);
  const auto r1 = p1.run();

  // Snapshot path: parse once, materialize per-run state copy-on-write.
  const auto snap = io::read_bookshelf_snapshot(aux);
  ASSERT_NE(snap, nullptr);
  core::GlobalPlacer p2(snap, cfg);
  const auto r2 = p2.run();

  EXPECT_EQ(r1.hpwl, r2.hpwl);  // bitwise: no tolerance
  EXPECT_EQ(r1.overflow, r2.overflow);
  EXPECT_EQ(r1.iterations, r2.iterations);
  const db::Database& d1 = p1.db();
  const db::Database& d2 = p2.db();
  ASSERT_EQ(d1.num_cells_total(), d2.num_cells_total());
  for (std::size_t c = 0; c < d1.num_cells_total(); ++c) {
    ASSERT_EQ(d1.x(c), d2.x(c)) << "cell " << c;
    ASSERT_EQ(d1.y(c), d2.y(c)) << "cell " << c;
  }
  // The snapshot run shares the immutable core (copy-on-write, not a deep
  // copy): the placer's database points at the snapshot's DesignCore.
  EXPECT_EQ(p2.db().core().get(), snap->base.core().get());
  // The shared core never moved while the run mutated positions.
  EXPECT_EQ(snap->content_hash, io::hash_bookshelf_aux(aux));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// DesignStore: parse-once, LRU, pins
// ---------------------------------------------------------------------------

TEST(DesignStore, ParsesOnceAndServesCacheHits) {
  DesignStore store(DesignStoreConfig{});
  std::string err;
  const auto s1 = store.get_demo(180, 9, &err);
  ASSERT_NE(s1, nullptr) << err;
  const auto s2 = store.get_demo(180, 9, &err);
  ASSERT_EQ(s1.get(), s2.get());  // the same shared snapshot, not a re-parse
  const auto st = store.stats();
  EXPECT_EQ(st.parses, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.resident, 1u);
  EXPECT_GT(st.resident_bytes, 0u);

  const auto s3 = store.get_hash(s1->content_hash, &err);
  EXPECT_EQ(s3.get(), s1.get());
  EXPECT_EQ(store.get_hash(0xdeadbeef, &err), nullptr);
  EXPECT_NE(err.find("unknown design hash"), std::string::npos);
}

TEST(DesignStore, ConcurrentGetsShareOneParse) {
  DesignStore store(DesignStoreConfig{});
  constexpr int kThreads = 8;
  std::vector<DesignStore::SnapshotPtr> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &got, t] {
      std::string err;
      got[t] = store.get_demo(160, 4, &err);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(got[t], nullptr);
    EXPECT_EQ(got[t].get(), got[0].get());
  }
  EXPECT_EQ(store.stats().parses, 1u);
}

TEST(DesignStore, LruEvictsOldestUnpinnedAndKeepsSource) {
  DesignStoreConfig cfg;
  cfg.capacity = 2;
  DesignStore store(cfg);
  std::string err;
  const auto a = store.get_demo(100, 1, &err);
  const auto b = store.get_demo(100, 2, &err);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Touch `a` so `b` is the LRU victim when `c` arrives.
  store.get_hash(a->content_hash, &err);
  const auto c = store.get_demo(100, 3, &err);
  ASSERT_NE(c, nullptr);

  auto st = store.stats();
  EXPECT_EQ(st.resident, 2u);
  EXPECT_EQ(st.cache_evictions, 1u);
  // `b` lost residency but kept its source: the next reference re-parses
  // lazily and lands on the same content hash.
  EXPECT_TRUE(store.known(b->content_hash));
  const auto b2 = store.get_hash(b->content_hash, &err);
  ASSERT_NE(b2, nullptr) << err;
  EXPECT_EQ(b2->content_hash, b->content_hash);
  EXPECT_EQ(store.stats().parses, 4u);  // a, b, c, b-again
}

TEST(DesignStore, PinnedSnapshotsAreEvictionExempt) {
  DesignStoreConfig cfg;
  cfg.capacity = 1;
  DesignStore store(cfg);
  std::string err;
  const auto a = store.get_demo(100, 1, &err);
  ASSERT_NE(a, nullptr);
  {
    DesignStore::Pin pin(store, a->content_hash);
    // Loading a second design wants to evict `a` — the pin forbids it, so the
    // store runs over capacity rather than dropping a running job's design.
    const auto b = store.get_demo(100, 2, &err);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(store.stats().resident, 2u);
    EXPECT_FALSE(store.evict(a->content_hash, &err));
    EXPECT_NE(err.find("pinned"), std::string::npos);
  }
  // Pin released: explicit evict now drops the entry entirely.
  ASSERT_TRUE(store.evict(a->content_hash, &err)) << err;
  EXPECT_FALSE(store.known(a->content_hash));
  EXPECT_FALSE(store.evict(a->content_hash, &err));
}

TEST(DesignStore, RejectsHashMismatchAfterFileChange) {
  const fs::path dir = fresh_dir("mismatch");
  const std::string aux = write_demo_aux(dir, 110, 6);
  DesignStoreConfig cfg;
  cfg.capacity = 1;
  DesignStore store(cfg);
  std::string err;
  const auto a = store.get_aux(aux, &err);
  ASSERT_NE(a, nullptr) << err;
  // Evict residency, then change the file: the remembered hash no longer
  // names the on-disk content, so the lazy re-parse must refuse.
  const auto b = store.get_demo(100, 1, &err);  // displaces `a` (capacity 1)
  ASSERT_NE(b, nullptr);
  {
    std::ofstream nodes((dir / "demo.nodes").string(), std::ios::app);
    nodes << "\n# changed\n";
  }
  EXPECT_EQ(store.get_hash(a->content_hash, &err), nullptr);
  EXPECT_NE(err.find("no longer matches"), std::string::npos);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Server admission: the ambiguous-spec bugfix (in-process path)
// ---------------------------------------------------------------------------

TEST(ServerValidation, RejectsAmbiguousAndMalformedSpecs) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);

  JobSpec both;
  both.aux = "a.aux";
  both.demo_cells = 100;
  auto out = srv.submit(both);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("ambiguous design source"), std::string::npos);

  JobSpec none;
  out = srv.submit(none);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("requires a design"), std::string::npos);

  JobSpec negative;
  negative.demo_cells = -5;
  out = srv.submit(negative);
  EXPECT_FALSE(out.ok);

  JobSpec huge;
  huge.demo_cells = kMaxDemoCells + 1;
  out = srv.submit(huge);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("admission bound"), std::string::npos);

  JobSpec bad_density;
  bad_density.demo_cells = 100;
  bad_density.target_density = 1.5;
  out = srv.submit(bad_density);
  EXPECT_FALSE(out.ok);

  EXPECT_EQ(srv.stats().rejected, 5u);
  srv.shutdown(/*drain=*/false);
}

// ---------------------------------------------------------------------------
// Server: upload, batch sweep, dedup
// ---------------------------------------------------------------------------

JobSpec batch_config(std::uint64_t seed, int iters = 25) {
  JobSpec s;
  s.max_iters = iters;
  s.grid = 32;
  s.seed = seed;
  s.full_flow = false;
  s.dedup = true;
  return s;
}

TEST(ServerBatch, UploadIsIdempotentPerContent) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  PlacementServer srv(cfg);
  JobSpec src;
  src.demo_cells = 140;
  src.demo_seed = 2;
  const auto up1 = srv.upload_design(src);
  ASSERT_TRUE(up1.ok) << up1.error;
  EXPECT_FALSE(up1.cached);
  EXPECT_EQ(up1.hash, io::demo_content_hash(140, 2));
  EXPECT_GT(up1.cells, 0u);
  const auto up2 = srv.upload_design(src);
  ASSERT_TRUE(up2.ok);
  EXPECT_TRUE(up2.cached);
  EXPECT_EQ(up2.hash, up1.hash);
  EXPECT_EQ(srv.stats().design_parses, 1u);

  const auto rows = srv.list_designs();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].hash, up1.hash);
  EXPECT_TRUE(rows[0].resident);

  std::string err;
  EXPECT_TRUE(srv.evict_design(up1.hash, &err)) << err;
  EXPECT_TRUE(srv.list_designs().empty());
  srv.shutdown(/*drain=*/false);
}

TEST(ServerBatch, SweepParsesOnceDedupsRepeatsAndMatchesSingleShot) {
  ServerConfig cfg;
  cfg.max_concurrency = 2;
  PlacementServer srv(cfg);

  JobSpec src;
  src.demo_cells = 200;
  src.demo_seed = 2;
  const auto up = srv.upload_design(src);
  ASSERT_TRUE(up.ok) << up.error;

  JobSpec base;
  base.design_hash = up.hash;
  // 3 distinct seeds + a repeat of the first + a density variant.
  std::vector<JobSpec> configs = {batch_config(1), batch_config(2),
                                  batch_config(3), batch_config(1)};
  configs.push_back(batch_config(1));
  configs.back().target_density = 0.8;

  const auto batch = srv.submit_batch(base, configs);
  ASSERT_TRUE(batch.ok) << batch.error;
  ASSERT_EQ(batch.jobs.size(), 5u);
  EXPECT_EQ(batch.design_hash, up.hash);
  // The repeated config shares the first config's job.
  EXPECT_FALSE(batch.jobs[0].deduped);
  EXPECT_TRUE(batch.jobs[3].deduped);
  EXPECT_EQ(batch.jobs[3].id, batch.jobs[0].id);
  EXPECT_FALSE(batch.jobs[4].deduped);  // density change = different config

  const auto status = srv.batch_wait(batch.batch_id, 300.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->all_terminal);
  EXPECT_EQ(status->done, 5u);
  EXPECT_GT(status->best_hpwl, 0.0);

  // Exactly ONE parse served the whole sweep.
  const auto st = srv.stats();
  EXPECT_EQ(st.design_parses, 1u);
  EXPECT_GE(st.design_cache_hits, 4u);
  EXPECT_EQ(st.dedup_hits, 1u);
  EXPECT_EQ(st.batches, 1u);

  // Dedup hit = the identical record, field for field.
  const auto r0 = srv.status(batch.jobs[0].id);
  const auto r3 = srv.status(batch.jobs[3].id);
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r0->id, r3->id);
  EXPECT_EQ(r0->hpwl, r3->hpwl);

  // Acceptance: a batched result is bit-identical to the same config run as
  // a fresh single-shot job on a fresh server (fresh parse, same threads).
  ServerConfig cfg2;
  cfg2.max_concurrency = 1;
  PlacementServer fresh(cfg2);
  JobSpec single = batch_config(2);
  single.demo_cells = 200;
  single.demo_seed = 2;
  single.dedup = false;
  const auto out = fresh.submit(single);
  ASSERT_TRUE(out.ok) << out.error;
  const auto fresh_rec = fresh.wait(out.id, 300.0);
  ASSERT_TRUE(fresh_rec.has_value());
  ASSERT_EQ(fresh_rec->state, JobState::kDone);
  const auto batched_rec = srv.wait(batch.jobs[1].id, 300.0);
  ASSERT_TRUE(batched_rec.has_value());
  ASSERT_EQ(batched_rec->state, JobState::kDone);
  EXPECT_EQ(fresh_rec->hpwl, batched_rec->hpwl);  // bitwise
  EXPECT_EQ(fresh_rec->overflow, batched_rec->overflow);
  EXPECT_EQ(fresh_rec->iterations, batched_rec->iterations);

  fresh.shutdown(/*drain=*/false);
  srv.shutdown(/*drain=*/false);
}

TEST(ServerBatch, WholeBatchRejectedWhenQueueCannotTakeIt) {
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.queue_capacity = 2;
  PlacementServer srv(cfg);
  JobSpec base;
  base.demo_cells = 120;
  base.demo_seed = 3;
  std::vector<JobSpec> configs = {batch_config(1), batch_config(2),
                                  batch_config(3)};
  const auto batch = srv.submit_batch(base, configs);
  EXPECT_FALSE(batch.ok);
  EXPECT_NE(batch.error.find("batch rejected whole"), std::string::npos);
  // All-or-nothing: nothing was admitted.
  EXPECT_EQ(srv.stats().submitted, 0u);
  EXPECT_EQ(srv.stats().queued, 0u);
  srv.shutdown(/*drain=*/false);
}

// ---------------------------------------------------------------------------
// Journal codecs + recovery
// ---------------------------------------------------------------------------

TEST(RecoveryCodecs, DesignRefAndBatchRoundTrip) {
  DesignRefInfo ref;
  ref.demo = true;
  ref.cells = 1234;
  ref.seed = 99;
  DesignRefInfo ref2;
  ASSERT_TRUE(decode_design_ref(encode_design_ref(ref), &ref2));
  EXPECT_EQ(ref2.demo, ref.demo);
  EXPECT_EQ(ref2.cells, ref.cells);
  EXPECT_EQ(ref2.seed, ref.seed);

  DesignRefInfo aux_ref;
  aux_ref.aux = "/designs/adaptec1.aux";
  ASSERT_TRUE(decode_design_ref(encode_design_ref(aux_ref), &ref2));
  EXPECT_FALSE(ref2.demo);
  EXPECT_EQ(ref2.aux, aux_ref.aux);

  BatchInfo batch;
  batch.design_hash = 0xabcdef0123456789ull;
  batch.label = "sweep";
  batch.job_ids = {4, 7, 7, 9};
  batch.deduped = {0, 0, 1, 0};
  BatchInfo batch2;
  ASSERT_TRUE(decode_batch(encode_batch(batch), &batch2));
  EXPECT_EQ(batch2.design_hash, batch.design_hash);
  EXPECT_EQ(batch2.label, batch.label);
  EXPECT_EQ(batch2.job_ids, batch.job_ids);
  EXPECT_EQ(batch2.deduped, batch.deduped);

  EXPECT_FALSE(decode_batch("short", &batch2));
  EXPECT_FALSE(decode_design_ref("", &ref2));
}

TEST(Recovery, DesignsAndBatchesSurviveCrashRestart) {
  const fs::path state = fresh_dir("batchrecover");
  const std::uint64_t dhash = io::demo_content_hash(130, 5);

  // Fabricate the journal a crashed daemon would leave: a design ref, one
  // finished batch member, and the batch record — no clean-shutdown marker.
  {
    io::JournalWriter w;
    ASSERT_TRUE(w.open((state / "journal.xpjl").string(), /*truncate=*/true));
    const auto rec = [](JournalEvent type, std::uint64_t id,
                        std::string payload) {
      io::JournalRecord r;
      r.type = static_cast<std::uint32_t>(type);
      r.job_id = id;
      r.time_s = 0.0;
      r.payload = std::move(payload);
      return r;
    };
    DesignRefInfo ref;
    ref.demo = true;
    ref.cells = 130;
    ref.seed = 5;
    ASSERT_TRUE(w.append(rec(JournalEvent::kDesignRef, dhash,
                             encode_design_ref(ref))));
    JobSpec spec = batch_config(1);
    spec.design_hash = dhash;
    spec.batch_id = 1;
    ASSERT_TRUE(w.append(rec(JournalEvent::kSubmit, 1,
                             encode_submit(spec, /*attempt=*/0))));
    ASSERT_TRUE(w.append(rec(JournalEvent::kStart, 1, {})));
    FinishInfo fin;
    fin.state = JobState::kDone;
    fin.hpwl = 42.5;
    fin.iterations = 25;
    ASSERT_TRUE(w.append(rec(JournalEvent::kFinish, 1, encode_finish(fin))));
    BatchInfo batch;
    batch.design_hash = dhash;
    batch.label = "sweep";
    batch.job_ids = {1};
    batch.deduped = {0};
    ASSERT_TRUE(w.append(rec(JournalEvent::kBatch, 1, encode_batch(batch))));
  }

  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.state_dir = state.string();
  PlacementServer srv(cfg);

  // The design survived as a re-registered source (not resident: recovery
  // never parses eagerly).
  const auto rows = srv.list_designs();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].hash, dhash);
  EXPECT_FALSE(rows[0].resident);

  // The batch aggregate survived and sees its restored terminal member.
  const auto status = srv.batch_status(1);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->design_hash, dhash);
  EXPECT_EQ(status->label, "sweep");
  EXPECT_TRUE(status->all_terminal);
  EXPECT_EQ(status->done, 1u);
  EXPECT_EQ(status->best_hpwl, 42.5);

  // The restored result keeps serving dedup: resubmitting the same config
  // against the same design returns job 1's record without running anything.
  JobSpec again = batch_config(1);
  again.design_hash = dhash;
  const auto out = srv.submit(again);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(out.deduped);
  EXPECT_EQ(out.id, 1u);
  const auto rec = srv.status(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->hpwl, 42.5);

  srv.shutdown(/*drain=*/true);
  fs::remove_all(state);
}

TEST(Recovery, UploadedDesignSurvivesCleanShutdown) {
  const fs::path state = fresh_dir("cleanupload");
  const std::uint64_t expect_hash = io::demo_content_hash(125, 8);
  {
    ServerConfig cfg;
    cfg.max_concurrency = 1;
    cfg.state_dir = state.string();
    PlacementServer srv(cfg);
    JobSpec src;
    src.demo_cells = 125;
    src.demo_seed = 8;
    const auto up = srv.upload_design(src);
    ASSERT_TRUE(up.ok) << up.error;
    ASSERT_EQ(up.hash, expect_hash);
    srv.shutdown(/*drain=*/true);
  }
  ServerConfig cfg;
  cfg.max_concurrency = 1;
  cfg.state_dir = state.string();
  PlacementServer srv(cfg);
  const auto rows = srv.list_designs();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].hash, expect_hash);
  // ... and it is usable: a job against the recovered hash re-parses lazily.
  JobSpec job = batch_config(1, /*iters=*/10);
  job.design_hash = expect_hash;
  const auto out = srv.submit(job);
  ASSERT_TRUE(out.ok) << out.error;
  const auto rec = srv.wait(out.id, 120.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->state, JobState::kDone);
  EXPECT_EQ(srv.stats().design_parses, 1u);
  srv.shutdown(/*drain=*/true);
  fs::remove_all(state);
}

// ---------------------------------------------------------------------------
// Concurrent COW sharing under the server (TSan target)
// ---------------------------------------------------------------------------

TEST(ServerBatch, ConcurrentJobsShareOneSnapshot) {
  ServerConfig cfg;
  cfg.max_concurrency = 4;
  PlacementServer srv(cfg);

  JobSpec src;
  src.demo_cells = 150;
  src.demo_seed = 6;
  const auto up = srv.upload_design(src);
  ASSERT_TRUE(up.ok) << up.error;

  JobSpec base;
  base.design_hash = up.hash;
  // Distinct seeds so all four genuinely run (no dedup sharing) — four
  // placements mutating private COW state over one shared immutable core.
  std::vector<JobSpec> configs = {batch_config(10, 15), batch_config(11, 15),
                                  batch_config(12, 15), batch_config(13, 15)};
  const auto batch = srv.submit_batch(base, configs);
  ASSERT_TRUE(batch.ok) << batch.error;
  const auto status = srv.batch_wait(batch.batch_id, 300.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->all_terminal);
  EXPECT_EQ(status->done, 4u);
  EXPECT_EQ(srv.stats().design_parses, 1u);

  // Same seed ⇒ same result, regardless of which worker ran it.
  JobSpec repeat = batch_config(10, 15);
  repeat.design_hash = up.hash;
  repeat.dedup = false;
  const auto out = srv.submit(repeat);
  ASSERT_TRUE(out.ok);
  const auto rec = srv.wait(out.id, 120.0);
  const auto first = srv.status(batch.jobs[0].id);
  ASSERT_TRUE(rec.has_value());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(rec->hpwl, first->hpwl);
  srv.shutdown(/*drain=*/false);
}

}  // namespace
}  // namespace xplace::server
