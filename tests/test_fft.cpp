#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "fft/dct.h"
#include "fft/fft.h"
#include "fft/reference.h"
#include "util/rng.h"

namespace xplace::fft {
namespace {

std::vector<Complex> random_complex(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

double max_err(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double max_err(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

// ---------------- helpers ----------------

TEST(FftUtil, Pow2Predicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

// ---------------- complex FFT vs naive DFT ----------------

class FftVsNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsNaive, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_complex(n, 100 + n);
  auto fast = fft(x);
  auto naive = reference::dft(x);
  EXPECT_LT(max_err(fast, naive), 1e-9 * static_cast<double>(n));
}

TEST_P(FftVsNaive, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  auto x = random_complex(n, 200 + n);
  auto y = ifft(fft(x));
  EXPECT_LT(max_err(x, y), 1e-12 * static_cast<double>(n) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftVsNaive,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

TEST(Fft, Linearity) {
  const std::size_t n = 64;
  auto a = random_complex(n, 1), b = random_complex(n, 2);
  std::vector<Complex> combo(n);
  const Complex alpha(2.0, -1.0), beta(0.5, 3.0);
  for (std::size_t i = 0; i < n; ++i) combo[i] = alpha * a[i] + beta * b[i];
  auto fc = fft(combo);
  auto fa = fft(a), fb = fft(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(fc[i] - (alpha * fa[i] + beta * fb[i])), 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  const std::size_t n = 128;
  auto x = random_complex(n, 5);
  auto X = fft(x);
  double et = 0.0, ef = 0.0;
  for (const auto& c : x) et += std::norm(c);
  for (const auto& c : X) ef += std::norm(c);
  EXPECT_NEAR(ef, et * static_cast<double>(n), 1e-8 * et * n);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> x(16, Complex(0, 0));
  x[0] = Complex(1, 0);
  auto X = fft(x);
  for (const auto& c : X) EXPECT_LT(std::abs(c - Complex(1, 0)), 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t k0 = 5;
  std::vector<Complex> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * k0 * i / n;
    x[i] = Complex(std::cos(ang), std::sin(ang));
  }
  auto X = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0) {
      EXPECT_NEAR(X[k].real(), static_cast<double>(n), 1e-8);
    } else {
      EXPECT_LT(std::abs(X[k]), 1e-8);
    }
  }
}

TEST(Fft2, RoundTrip2d) {
  const std::size_t r = 16, c = 32;
  auto x = random_complex(r * c, 9);
  auto y = x;
  fft2(y.data(), r, c);
  ifft2(y.data(), r, c);
  EXPECT_LT(max_err(x, y), 1e-10);
}

TEST(Fft2, MatchesSeparableNaive) {
  const std::size_t r = 8, c = 8;
  auto x = random_complex(r * c, 10);
  auto fast = x;
  fft2(fast.data(), r, c);
  // Naive 2-D DFT.
  std::vector<Complex> naive(r * c);
  for (std::size_t ku = 0; ku < r; ++ku) {
    for (std::size_t kv = 0; kv < c; ++kv) {
      Complex acc(0, 0);
      for (std::size_t u = 0; u < r; ++u) {
        for (std::size_t v = 0; v < c; ++v) {
          const double ang = -2.0 * std::numbers::pi *
                             (static_cast<double>(ku * u) / r +
                              static_cast<double>(kv * v) / c);
          acc += x[u * c + v] * Complex(std::cos(ang), std::sin(ang));
        }
      }
      naive[ku * c + kv] = acc;
    }
  }
  EXPECT_LT(max_err(fast, naive), 1e-8);
}

// ---------------- DCT family vs naive ----------------

class DctVsNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DctVsNaive, DctMatchesNaive) {
  const std::size_t n = GetParam();
  auto x = random_real(n, 300 + n);
  auto fast = dct(x);
  auto naive = reference::dct2_naive_1d(x);
  EXPECT_LT(max_err(fast, naive), 1e-9 * static_cast<double>(n));
}

TEST_P(DctVsNaive, IdctMatchesNaive) {
  const std::size_t n = GetParam();
  auto x = random_real(n, 400 + n);
  auto fast = idct(x);
  auto naive = reference::idct_naive_1d(x);
  EXPECT_LT(max_err(fast, naive), 1e-9);
}

TEST_P(DctVsNaive, IdxstMatchesNaive) {
  const std::size_t n = GetParam();
  auto x = random_real(n, 500 + n);
  auto fast = idxst(x);
  auto naive = reference::idxst_naive_1d(x);
  EXPECT_LT(max_err(fast, naive), 1e-9);
}

TEST_P(DctVsNaive, IdctInvertsDct) {
  const std::size_t n = GetParam();
  auto x = random_real(n, 600 + n);
  auto y = idct(dct(x));
  EXPECT_LT(max_err(x, y), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, DctVsNaive,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(Dct2d, RoundTrip) {
  const std::size_t m = 16;
  auto x = random_real(m * m, 7);
  auto y = x;
  dct2(y.data(), m, m);
  idct2(y.data(), m, m);
  EXPECT_LT(max_err(x, y), 1e-10);
}

TEST(Dct2d, ConstantMapHasOnlyDcCoefficient) {
  const std::size_t m = 8;
  std::vector<double> x(m * m, 3.5);
  dct2(x.data(), m, m);
  EXPECT_NEAR(x[0], 3.5 * m * m, 1e-9);
  for (std::size_t i = 1; i < m * m; ++i) EXPECT_NEAR(x[i], 0.0, 1e-9);
}

TEST(Idxst2d, SineSynthesisMatchesDirectSum) {
  // idxst_idct(coeff) must equal Σ α_u α_v c_uv sin(w_u x_n) cos(w_v y_m).
  const std::size_t m = 8;
  auto c = random_real(m * m, 12);
  auto fast = c;
  idxst_idct(fast.data(), m, m);
  for (std::size_t n = 0; n < m; ++n) {
    for (std::size_t l = 0; l < m; ++l) {
      double acc = 0.0;
      for (std::size_t u = 0; u < m; ++u) {
        for (std::size_t v = 0; v < m; ++v) {
          const double au = u == 0 ? 1.0 / m : 2.0 / m;
          const double av = v == 0 ? 1.0 / m : 2.0 / m;
          acc += au * av * c[u * m + v] *
                 std::sin(std::numbers::pi * u * (2.0 * n + 1) / (2.0 * m)) *
                 std::cos(std::numbers::pi * v * (2.0 * l + 1) / (2.0 * m));
        }
      }
      EXPECT_NEAR(fast[n * m + l], acc, 1e-10) << n << "," << l;
    }
  }
}

}  // namespace
}  // namespace xplace::fft
