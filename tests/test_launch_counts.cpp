// Operator-graph size assertions — the hardware-independent heart of the
// paper's Section 3.1: each execution tier must issue exactly the kernel
// launches its design promises. These tests pin the op-graph contracts so a
// refactor cannot silently erode the Xplace-vs-baseline contrast that
// Tables 2/3 measure.
#include <gtest/gtest.h>

#include "core/gradient_engine.h"
#include "io/generator.h"
#include "ops/netlist_view.h"
#include "ops/wirelength.h"
#include "ops/wirelength_tape.h"
#include "tensor/dispatch.h"
#include "tensor/tape.h"

namespace xplace {
namespace {

using tensor::Dispatcher;

db::Database lc_design() {
  io::GeneratorSpec spec;
  spec.name = "launch_unit";
  spec.num_cells = 300;
  spec.num_nets = 320;
  spec.seed = 55;
  return io::generate(spec);
}

std::vector<float> coords(const db::Database& db, bool want_x) {
  std::vector<float> v(db.num_cells_total());
  for (std::size_t c = 0; c < v.size(); ++c) {
    v[c] = static_cast<float>(want_x ? db.x(c) : db.y(c));
  }
  return v;
}

TEST(LaunchCounts, TransientNameBuffersCountByContent) {
  // The slot table keys by name *content* and interns the string on first
  // claim, so per-call temporaries (the Tape::backward pattern) aggregate
  // correctly and the histogram never dangles into freed buffers.
  auto& d = Dispatcher::global();
  d.reset_counters();
  for (int i = 0; i < 100; ++i) {
    const std::string name =
        std::string("transient.") + (i % 2 == 0 ? "even" : "odd");
    d.run(name.c_str(), [] {});
  }
  const auto counts = d.launch_counts();
  EXPECT_EQ(counts.at("transient.even"), 50u);
  EXPECT_EQ(counts.at("transient.odd"), 50u);
  EXPECT_EQ(counts.count("(slot-table overflow)"), 0u);
}

TEST(LaunchCounts, FusedWirelengthIsOneKernel) {
  db::Database db = lc_design();
  const ops::NetlistView view = ops::build_netlist_view(db);
  const auto x = coords(db, true), y = coords(db, false);
  std::vector<float> gx(view.num_cells, 0.0f), gy(view.num_cells, 0.0f);
  auto& d = Dispatcher::global();
  d.reset_counters();
  ops::fused_wl_grad_hpwl(view, x.data(), y.data(), 8.0f, gx.data(), gy.data());
  EXPECT_EQ(d.total_launches(), 1u);
  EXPECT_EQ(d.launch_counts().at("fused_wl_grad_hpwl"), 1u);
}

TEST(LaunchCounts, SeparateKernelsAreThree) {
  db::Database db = lc_design();
  const ops::NetlistView view = ops::build_netlist_view(db);
  const auto x = coords(db, true), y = coords(db, false);
  std::vector<float> gx(view.num_cells, 0.0f), gy(view.num_cells, 0.0f);
  auto& d = Dispatcher::global();
  d.reset_counters();
  (void)ops::wa_wirelength(view, x.data(), y.data(), 8.0f);
  ops::wa_gradient(view, x.data(), y.data(), 8.0f, gx.data(), gy.data());
  (void)ops::hpwl(view, x.data(), y.data());
  EXPECT_EQ(d.total_launches(), 3u);
}

TEST(LaunchCounts, TapeWirelengthElementaryOpGraph) {
  // Forward: 15 elementary kernels per direction = 30; the autograd tape
  // records 6 coalesced backward nodes per direction = 12 more launches on
  // backward(); the separate HPWL op issues 2.
  db::Database db = lc_design();
  const ops::NetlistView view = ops::build_netlist_view(db);
  const auto x = coords(db, true), y = coords(db, false);
  std::vector<float> gx(view.num_cells, 0.0f), gy(view.num_cells, 0.0f);
  ops::TapeWirelength wl(view);
  tensor::Tape tape;
  auto& d = Dispatcher::global();

  d.reset_counters();
  wl.forward(tape, x.data(), y.data(), 8.0f, gx.data(), gy.data());
  EXPECT_EQ(d.total_launches(), 30u);
  EXPECT_EQ(tape.size(), 12u);

  d.reset_counters();
  tape.backward();
  EXPECT_EQ(d.total_launches(), 12u);

  d.reset_counters();
  (void)wl.hpwl_op(x.data(), y.data());
  EXPECT_EQ(d.total_launches(), 2u);
}

/// Launches per GradientEngine::compute() call for a given config.
std::uint64_t engine_launches(const core::PlacerConfig& base, int iter) {
  db::Database db = lc_design();
  db.insert_fillers(1);
  core::PlacerConfig cfg = base;
  cfg.grid_dim = 32;
  core::GradientEngine engine(db, cfg);
  const std::size_t n = db.num_cells_total();
  std::vector<float> x = coords(db, true), y = coords(db, false);
  std::vector<float> gx(n, 0.0f), gy(n, 0.0f);
  auto& d = Dispatcher::global();
  // Warm-up evaluation (fills the skip caches), then measure.
  engine.compute(x.data(), y.data(), 8.0f, 1e-4f, 0, 0.0, gx.data(), gy.data());
  d.reset_counters();
  engine.compute(x.data(), y.data(), 8.0f, 1e-4f, iter, 0.0, gx.data(), gy.data());
  const std::uint64_t launches = d.total_launches();
  d.reset_counters();
  return launches;
}

TEST(LaunchCounts, XplaceEngineGraphIsSmall) {
  // Full Xplace tier: fused WL(1) + zero(2) + density D/D_fl/add/ovfl(4) +
  // spectral solve(3: dct2+scale, field rows, field cols) + gathers(2) +
  // norms(2) + combine(1) = 15.
  const std::uint64_t n = engine_launches(core::PlacerConfig::xplace(), 200);
  EXPECT_LE(n, 18u);
  EXPECT_GE(n, 14u);
}

TEST(LaunchCounts, BaselineEngineGraphIsSeveralTimesLarger) {
  const std::uint64_t xplace = engine_launches(core::PlacerConfig::xplace(), 200);
  const std::uint64_t baseline =
      engine_launches(core::PlacerConfig::dreamplace(), 200);
  // The paper's operator-reduction premise: the stock graph is ~4x larger.
  EXPECT_GE(baseline, 3 * xplace);
  EXPECT_GE(baseline, 60u);
}

TEST(LaunchCounts, SkippedIterationDropsDensityPipeline) {
  // During an early-stage skip, the density scatter/solve/gather vanish.
  db::Database db = lc_design();
  db.insert_fillers(1);
  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 32;
  core::GradientEngine engine(db, cfg);
  const std::size_t n = db.num_cells_total();
  std::vector<float> x = coords(db, true), y = coords(db, false);
  std::vector<float> gx(n, 0.0f), gy(n, 0.0f);
  auto& d = Dispatcher::global();
  // Iteration 0 runs the full pipeline (tiny λ ⇒ r < 0.01 afterwards).
  engine.compute(x.data(), y.data(), 8.0f, 1e-12f, 0, 0.0, gx.data(), gy.data());
  d.reset_counters();
  auto res = engine.compute(x.data(), y.data(), 8.0f, 1e-12f, 1, 0.0,
                            gx.data(), gy.data());
  EXPECT_TRUE(res.density_skipped);
  EXPECT_EQ(d.launch_counts().count("es.dct2"), 0u);
  EXPECT_EQ(d.launch_counts().count("density.map_physical"), 0u);
  EXPECT_LE(d.total_launches(), 8u);
  d.reset_counters();
}

}  // namespace
}  // namespace xplace
