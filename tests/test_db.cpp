#include <gtest/gtest.h>

#include <stdexcept>

#include "db/database.h"
#include "db/stats.h"

namespace xplace::db {
namespace {

/// Small hand-built design: 3 movable cells, 1 fixed macro, 2 nets.
Database tiny_design() {
  Database db;
  db.set_design_name("tiny");
  db.set_region({0, 0, 100, 100});
  db.set_target_density(0.8);
  // Deliberately interleave kinds to exercise the movable-first reorder.
  const int macro = db.add_cell("macro", 20, 20, CellKind::kFixed);
  const int a = db.add_cell("a", 4, 10, CellKind::kMovable);
  const int b = db.add_cell("b", 6, 10, CellKind::kMovable);
  const int c = db.add_cell("c", 8, 10, CellKind::kMovable);
  const int n1 = db.add_net("n1");
  db.add_pin(n1, a, 1.0, 0.0);
  db.add_pin(n1, b, -1.0, 0.0);
  db.add_pin(n1, macro, 0.0, 5.0);
  const int n2 = db.add_net("n2");
  db.add_pin(n2, b, 0.0, 0.0);
  db.add_pin(n2, c, 0.0, 2.0);
  db.set_initial_position(macro, 50, 50);
  db.set_initial_position(a, 10, 10);
  db.set_initial_position(b, 20, 10);
  db.set_initial_position(c, 30, 10);
  db.finalize();
  return db;
}

TEST(Database, MovableFirstOrdering) {
  Database db = tiny_design();
  EXPECT_EQ(db.num_movable(), 3u);
  EXPECT_EQ(db.num_fixed(), 1u);
  EXPECT_EQ(db.num_physical(), 4u);
  for (std::size_t i = 0; i < db.num_movable(); ++i) {
    EXPECT_EQ(db.kind(i), CellKind::kMovable);
  }
  EXPECT_EQ(db.kind(3), CellKind::kFixed);
  EXPECT_EQ(db.cell_name(3), "macro");
  // Names survive the permutation and lookup agrees.
  EXPECT_EQ(db.cell_id("macro"), 3);
  EXPECT_EQ(db.cell_name(db.cell_id("b")), "b");
}

TEST(Database, PositionsFollowPermutation) {
  Database db = tiny_design();
  const int a = db.cell_id("a");
  EXPECT_DOUBLE_EQ(db.x(a), 10.0);
  EXPECT_DOUBLE_EQ(db.y(a), 10.0);
  const int macro = db.cell_id("macro");
  EXPECT_DOUBLE_EQ(db.x(macro), 50.0);
}

TEST(Database, NetCsrStructure) {
  Database db = tiny_design();
  EXPECT_EQ(db.num_nets(), 2u);
  EXPECT_EQ(db.num_pins(), 5u);
  EXPECT_EQ(db.net_degree(0), 3u);
  EXPECT_EQ(db.net_degree(1), 2u);
  // Pin 0 of net 0 connects cell "a" with offset (1, 0).
  const std::size_t p0 = db.net_pin_start(0);
  EXPECT_EQ(db.pin_cell(p0), db.cell_id("a"));
  EXPECT_DOUBLE_EQ(db.pin_offset_x(p0), 1.0);
  // pin_net back-references are consistent.
  for (std::size_t e = 0; e < db.num_nets(); ++e) {
    for (std::size_t p = db.net_pin_start(e); p < db.net_pin_start(e + 1); ++p) {
      EXPECT_EQ(db.pin_net(p), e);
    }
  }
}

TEST(Database, CellPinCsr) {
  Database db = tiny_design();
  // Cell b is on both nets.
  const int b = db.cell_id("b");
  EXPECT_EQ(db.cell_num_nets(b), 2u);
  const int c = db.cell_id("c");
  EXPECT_EQ(db.cell_num_nets(c), 1u);
  // Every pin appears exactly once across all cell pin lists.
  std::vector<int> seen(db.num_pins(), 0);
  for (std::size_t cell = 0; cell < db.num_physical(); ++cell) {
    for (std::size_t k = db.cell_pin_start(cell); k < db.cell_pin_start(cell + 1); ++k) {
      const auto pin = db.cell_pin_list()[k];
      EXPECT_EQ(db.pin_cell(pin), cell);
      ++seen[pin];
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Database, HpwlMatchesHandComputation) {
  Database db = tiny_design();
  // net1 pins: a(10,10)+(1,0)=(11,10); b(20,10)+(-1,0)=(19,10); macro(50,55).
  // HPWL = (50-11) + (55-10) = 84.
  // net2 pins: b(20,10); c(30,12). HPWL = 10 + 2 = 12.
  EXPECT_NEAR(db.hpwl(), 96.0, 1e-9);
  EXPECT_NEAR(db.net_hpwl(0), 84.0, 1e-9);
  EXPECT_NEAR(db.net_hpwl(1), 12.0, 1e-9);
}

TEST(Database, HpwlSinglePinNetIsZero) {
  Database db;
  db.set_region({0, 0, 10, 10});
  const int a = db.add_cell("a", 1, 1, CellKind::kMovable);
  const int n = db.add_net("n");
  db.add_pin(n, a, 0, 0);
  db.finalize();
  EXPECT_DOUBLE_EQ(db.hpwl(), 0.0);
}

TEST(Database, AreasComputed) {
  Database db = tiny_design();
  EXPECT_DOUBLE_EQ(db.total_movable_area(), 4 * 10 + 6 * 10 + 8 * 10.0);
  EXPECT_DOUBLE_EQ(db.fixed_area_in_region(), 400.0);
}

TEST(Database, FillerInsertion) {
  Database db = tiny_design();
  db.insert_fillers(7);
  // filler area = 0.8*(10000-400) - 180 = 7500, filler = 6x10 → 125 fillers.
  EXPECT_GT(db.num_fillers(), 100u);
  EXPECT_LT(db.num_fillers(), 140u);
  for (std::size_t c = db.num_physical(); c < db.num_cells_total(); ++c) {
    EXPECT_EQ(db.kind(c), CellKind::kFiller);
    EXPECT_TRUE(db.is_filler(c));
    EXPECT_EQ(db.cell_num_nets(c), 0u);
    EXPECT_TRUE(db.region().contains(db.x(c), db.y(c)));
  }
}

TEST(Database, FillerInsertionDeterministic) {
  Database a = tiny_design();
  Database b = tiny_design();
  a.insert_fillers(42);
  b.insert_fillers(42);
  ASSERT_EQ(a.num_fillers(), b.num_fillers());
  for (std::size_t c = a.num_physical(); c < a.num_cells_total(); ++c) {
    EXPECT_DOUBLE_EQ(a.x(c), b.x(c));
    EXPECT_DOUBLE_EQ(a.y(c), b.y(c));
  }
}

TEST(Database, DoubleFillerInsertionThrows) {
  Database db = tiny_design();
  db.insert_fillers(1);
  EXPECT_THROW(db.insert_fillers(1), std::logic_error);
}

TEST(Database, BuilderErrors) {
  Database db;
  EXPECT_THROW(db.add_cell("bad", -1, 5, CellKind::kMovable), std::invalid_argument);
  db.add_cell("dup", 1, 1, CellKind::kMovable);
  EXPECT_THROW(db.add_cell("dup", 1, 1, CellKind::kMovable), std::invalid_argument);
  db.set_region({0, 0, 10, 10});
  db.finalize();
  EXPECT_THROW(db.add_cell("late", 1, 1, CellKind::kMovable), std::logic_error);
  EXPECT_THROW(db.finalize(), std::logic_error);
}

TEST(Database, RegionDefaultsToRowBounds) {
  Database db;
  db.add_cell("a", 1, 1, CellKind::kMovable);
  Row r1{0, 0, 12, 1.0, 100};
  Row r2{0, 12, 12, 1.0, 100};
  db.add_row(r1);
  db.add_row(r2);
  db.finalize();
  EXPECT_DOUBLE_EQ(db.region().hx, 100.0);
  EXPECT_DOUBLE_EQ(db.region().hy, 24.0);
}

TEST(Stats, ComputedFieldsConsistent) {
  Database db = tiny_design();
  const DesignStats s = compute_stats(db);
  EXPECT_EQ(s.design, "tiny");
  EXPECT_EQ(s.num_movable, 3u);
  EXPECT_EQ(s.num_nets, 2u);
  EXPECT_EQ(s.num_pins, 5u);
  EXPECT_NEAR(s.avg_net_degree, 2.5, 1e-12);
  EXPECT_NEAR(s.utilization, 180.0 / 9600.0, 1e-12);
  EXPECT_FALSE(s.row().empty());
  EXPECT_FALSE(DesignStats::header().empty());
}

TEST(Database, CellRectCenteredOnPosition) {
  Database db = tiny_design();
  const int a = db.cell_id("a");
  const RectD r = db.cell_rect(a);
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 10.0);
  EXPECT_DOUBLE_EQ(r.cx(), db.x(a));
  EXPECT_DOUBLE_EQ(r.cy(), db.y(a));
}

}  // namespace
}  // namespace xplace::db
