// Property-style sweeps across parameters (TEST_P), validating invariants
// the individual unit tests only spot-check.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "io/generator.h"
#include "ops/density.h"
#include "ops/electrostatics.h"
#include "ops/netlist_view.h"
#include "ops/wirelength.h"
#include "util/rng.h"

namespace xplace {
namespace {

db::Database prop_design(std::uint64_t seed) {
  io::GeneratorSpec spec;
  spec.name = "prop";
  spec.num_cells = 400;
  spec.num_nets = 420;
  spec.seed = seed;
  return io::generate(spec);
}

std::vector<float> xs(const db::Database& db) {
  std::vector<float> v(db.num_cells_total());
  for (std::size_t c = 0; c < v.size(); ++c) v[c] = static_cast<float>(db.x(c));
  return v;
}
std::vector<float> ys(const db::Database& db) {
  std::vector<float> v(db.num_cells_total());
  for (std::size_t c = 0; c < v.size(); ++c) v[c] = static_cast<float>(db.y(c));
  return v;
}

// ---- WA wirelength: monotone tightening in γ, always below HPWL ----

class WaGammaMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaGammaMonotone, TightensTowardHpwlAsGammaShrinks) {
  db::Database db = prop_design(GetParam());
  const ops::NetlistView view = ops::build_netlist_view(db);
  const auto x = xs(db), y = ys(db);
  const double h = ops::hpwl(view, x.data(), y.data());
  double prev = -1e300;
  for (float gamma : {64.0f, 32.0f, 16.0f, 8.0f, 4.0f, 2.0f, 1.0f}) {
    const double wa = ops::wa_wirelength(view, x.data(), y.data(), gamma);
    EXPECT_LE(wa, h * (1 + 1e-6)) << "gamma " << gamma;
    EXPECT_GE(wa, prev - 1e-6 * h) << "gamma " << gamma;
    prev = wa;
  }
  EXPECT_NEAR(prev, h, 0.08 * h);  // γ=1 (≈ a site) is a tight approximation
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaGammaMonotone, ::testing::Values(1, 2, 3, 4));

// ---- WA wirelength: translation invariance and gradient zero-sum ----

TEST(WaInvariance, TranslationInvariantAndGradientSumsToZero) {
  db::Database db = prop_design(9);
  const ops::NetlistView view = ops::build_netlist_view(db);
  auto x = xs(db), y = ys(db);
  const double wa0 = ops::wa_wirelength(view, x.data(), y.data(), 8.0f);
  for (auto& v : x) v += 37.5f;
  for (auto& v : y) v -= 11.25f;
  const double wa1 = ops::wa_wirelength(view, x.data(), y.data(), 8.0f);
  EXPECT_NEAR(wa0, wa1, 1e-4 * std::fabs(wa0));

  // Σ_i dWL/dx_i = 0 per net (moving everything together changes nothing).
  std::vector<float> gx(view.num_cells, 0.0f), gy(view.num_cells, 0.0f);
  ops::wa_gradient(view, x.data(), y.data(), 8.0f, gx.data(), gy.data());
  double sum_gx = 0.0, sum_gy = 0.0, abs_gx = 0.0;
  for (std::size_t c = 0; c < view.num_cells; ++c) {
    sum_gx += gx[c];
    sum_gy += gy[c];
    abs_gx += std::fabs(gx[c]);
  }
  EXPECT_NEAR(sum_gx, 0.0, 1e-3 * abs_gx + 1e-6);
  EXPECT_NEAR(sum_gy, 0.0, 1e-3 * abs_gx + 1e-6);
}

// ---- density conservation across grid sizes ----

class DensityGridSweep : public ::testing::TestWithParam<int> {};

TEST_P(DensityGridSweep, InteriorCellsConserveArea) {
  const int m = GetParam();
  db::Database db = prop_design(11);
  db.insert_fillers(1);
  // Pull all movable cells well inside so smoothing never clips at edges.
  const auto& r = db.region();
  Rng rng(4);
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    db.set_position(c, rng.uniform(r.lx + r.width() * 0.25, r.hx - r.width() * 0.25),
                    rng.uniform(r.ly + r.height() * 0.25, r.hy - r.height() * 0.25));
  }
  ops::DensityGrid grid(db, m);
  const auto x = xs(db), y = ys(db);
  std::vector<double> map(grid.num_bins());
  grid.accumulate_range("p", x.data(), y.data(), 0, db.num_movable(), map.data(), true);
  EXPECT_NEAR(grid.total_area(map.data()), db.total_movable_area(),
              1e-3 * db.total_movable_area())
      << "grid " << m;
}

INSTANTIATE_TEST_SUITE_P(GridSizes, DensityGridSweep,
                         ::testing::Values(16, 32, 64, 128));

// ---- Poisson: linearity in ρ ----

TEST(PoissonProperty, FieldIsLinearInDensity) {
  const int m = 16;
  Rng rng(5);
  std::vector<double> a(m * m), b(m * m), combo(m * m);
  for (int i = 0; i < m * m; ++i) {
    a[i] = rng.uniform(0, 1);
    b[i] = rng.uniform(0, 1);
    combo[i] = 2.0 * a[i] - 0.5 * b[i];
  }
  ops::PoissonSolver s(m, 1.0, 1.0);
  s.solve(a.data(), false);
  const auto ex_a = s.ex();
  s.solve(b.data(), false);
  const auto ex_b = s.ex();
  s.solve(combo.data(), false);
  for (int i = 0; i < m * m; ++i) {
    EXPECT_NEAR(s.ex()[i], 2.0 * ex_a[i] - 0.5 * ex_b[i], 1e-9);
  }
}

TEST(PoissonProperty, InternalForcesBalance) {
  // Newton's third law: the total electrostatic force of the (zero-mean)
  // charge distribution on itself vanishes: Σ_b ρ̄_b·E_b ≈ 0 up to the grid
  // discretization error.
  const int m = 32;
  Rng rng(6);
  std::vector<double> rho(m * m);
  for (auto& v : rho) v = rng.uniform(0, 2);
  double mean = 0.0;
  for (double v : rho) mean += v;
  mean /= static_cast<double>(m * m);
  ops::PoissonSolver s(m, 1.0, 1.0);
  s.solve(rho.data(), false);
  double fx = 0.0, fy = 0.0, abs_fx = 0.0, abs_fy = 0.0;
  for (int i = 0; i < m * m; ++i) {
    fx += (rho[i] - mean) * s.ex()[i];
    fy += (rho[i] - mean) * s.ey()[i];
    abs_fx += std::fabs((rho[i] - mean) * s.ex()[i]);
    abs_fy += std::fabs((rho[i] - mean) * s.ey()[i]);
  }
  EXPECT_LT(std::fabs(fx), 0.01 * abs_fx);
  EXPECT_LT(std::fabs(fy), 0.01 * abs_fy);
}

// ---- optimizers on a convex quadratic ----

namespace {

/// Gradient of f(p) = Σ_i ((x_i − tx_i)² + (y_i − ty_i)²) on a 4-cell design.
db::Database quad_design() {
  db::Database db;
  db.set_region({0, 0, 100, 100});
  for (int i = 0; i < 4; ++i) {
    db.add_cell("q" + std::to_string(i), 2, 2, db::CellKind::kMovable);
  }
  const int n = db.add_net("n");
  for (int i = 0; i < 4; ++i) db.add_pin(n, i, 0, 0);
  db.finalize();
  for (int i = 0; i < 4; ++i) db.set_position(i, 10 + i, 10);
  return db;
}

}  // namespace

TEST(OptimizerProperty, NesterovMinimizesQuadratic) {
  db::Database db = quad_design();
  core::PlacerConfig cfg;
  cfg.initial_step_bins = 0.5;
  cfg.max_step_bins = 4.0;
  core::NesterovOptimizer opt(db, cfg, 16);
  const float tx[4] = {20, 40, 60, 80};
  const float ty[4] = {30, 30, 70, 70};
  std::vector<float> gx(4), gy(4);
  for (int iter = 0; iter < 300; ++iter) {
    for (int i = 0; i < 4; ++i) {
      gx[i] = 2.0f * (opt.query_x()[i] - tx[i]);
      gy[i] = 2.0f * (opt.query_y()[i] - ty[i]);
    }
    opt.step(gx.data(), gy.data());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(opt.solution_x()[i], tx[i], 0.5) << i;
    EXPECT_NEAR(opt.solution_y()[i], ty[i], 0.5) << i;
  }
}

TEST(OptimizerProperty, AdamMinimizesQuadratic) {
  db::Database db = quad_design();
  core::PlacerConfig cfg;
  core::AdamOptimizer opt(db, cfg, 16, /*lr_bins=*/0.2);
  const float tx[4] = {25, 45, 65, 85};
  const float ty[4] = {35, 35, 75, 75};
  std::vector<float> gx(4), gy(4);
  for (int iter = 0; iter < 800; ++iter) {
    for (int i = 0; i < 4; ++i) {
      gx[i] = 2.0f * (opt.query_x()[i] - tx[i]);
      gy[i] = 2.0f * (opt.query_y()[i] - ty[i]);
    }
    opt.step(gx.data(), gy.data());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(opt.solution_x()[i], tx[i], 1.0) << i;
    EXPECT_NEAR(opt.solution_y()[i], ty[i], 1.0) << i;
  }
}

TEST(OptimizerProperty, ClampBoundsRespectFixedCellsAndRegion) {
  db::Database db = prop_design(13);
  db.insert_fillers(1);
  std::vector<float> min_x, max_x, min_y, max_y;
  core::build_clamp_bounds(db, min_x, max_x, min_y, max_y);
  for (std::size_t c = 0; c < db.num_cells_total(); ++c) {
    if (db.kind(c) == db::CellKind::kFixed) {
      EXPECT_EQ(min_x[c], max_x[c]);
      continue;
    }
    EXPECT_GE(min_x[c], db.region().lx - 1e-6f);
    EXPECT_LE(max_x[c], db.region().hx + 1e-6f);
    EXPECT_LE(min_x[c], max_x[c]);
  }
}

// ---- overflow decreases monotonically along a spread interpolation ----

TEST(OverflowProperty, InterpolatingTowardUniformReducesOverflow) {
  db::Database db = prop_design(15);
  ops::DensityGrid grid(db, 32);
  // Start clumped at center, end at the generated (scattered) layout.
  const auto x_end = xs(db), y_end = ys(db);
  const double cx = db.region().cx(), cy = db.region().cy();
  double prev = 1e300;
  for (double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<float> x(x_end), y(y_end);
    for (std::size_t c = 0; c < db.num_movable(); ++c) {
      x[c] = static_cast<float>(cx + t * (x_end[c] - cx));
      y[c] = static_cast<float>(cy + t * (y_end[c] - cy));
    }
    std::vector<double> map(grid.num_bins());
    grid.accumulate_range("p", x.data(), y.data(), 0, db.num_physical(),
                          map.data(), true);
    const double ovfl = grid.overflow(map.data());
    EXPECT_LE(ovfl, prev + 1e-9) << "t=" << t;
    prev = ovfl;
  }
}

}  // namespace
}  // namespace xplace
