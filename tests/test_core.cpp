#include <gtest/gtest.h>

#include <cmath>

#include "core/placer.h"
#include "core/scheduler.h"
#include "io/generator.h"
#include "tensor/dispatch.h"

namespace xplace::core {
namespace {

db::Database gp_design(std::size_t cells = 1200, std::uint64_t seed = 5) {
  io::GeneratorSpec spec;
  spec.name = "core_unit";
  spec.num_cells = cells;
  spec.num_nets = cells + cells / 20;
  spec.num_macros = 3;
  spec.num_io_pads = 16;
  spec.seed = seed;
  return io::generate(spec);
}

PlacerConfig fast_cfg(PlacerConfig cfg = PlacerConfig::xplace()) {
  cfg.grid_dim = 64;
  cfg.max_iters = 700;
  return cfg;
}

// ---------------- scheduler ----------------

TEST(Scheduler, GammaDecreasesWithOverflow) {
  PlacerConfig cfg;
  Scheduler s(cfg, 4.0);
  EXPECT_GT(s.gamma(1.0), s.gamma(0.5));
  EXPECT_GT(s.gamma(0.5), s.gamma(0.1));
  EXPECT_GT(s.gamma(0.1), s.gamma(0.0));
  // ePlace anchor: at overflow = 0.1 the exponent is -1.
  EXPECT_NEAR(s.gamma(0.1), cfg.gamma_base_factor * 4.0 * 0.1, 1e-9);
}

TEST(Scheduler, LambdaInitFromGradNorms) {
  PlacerConfig cfg;
  Scheduler s(cfg, 1.0);
  EXPECT_FALSE(s.lambda_initialized());
  s.init_lambda(100.0, 50.0, 1e6);
  EXPECT_TRUE(s.lambda_initialized());
  EXPECT_NEAR(s.lambda(), cfg.lambda_init_factor * 2.0, 1e-12);
}

TEST(Scheduler, LambdaGrowsWhenHpwlFlat) {
  PlacerConfig cfg;
  cfg.stage_aware_schedule = false;
  Scheduler s(cfg, 1.0);
  s.init_lambda(1.0, 1.0, 1e6);
  const double l0 = s.lambda();
  s.maybe_update(1, 1e6, 0.0);  // ΔHPWL = 0 → μ = mu_base
  EXPECT_NEAR(s.lambda(), l0 * cfg.mu_base, 1e-12);
}

TEST(Scheduler, LambdaGrowthSlowsOnHpwlSpike) {
  PlacerConfig cfg;
  cfg.stage_aware_schedule = false;
  Scheduler s(cfg, 1.0);
  s.init_lambda(1.0, 1.0, 1e6);
  s.maybe_update(1, 1e6, 0.0);
  const double l_flat = s.lambda();
  Scheduler s2(cfg, 1.0);
  s2.init_lambda(1.0, 1.0, 1e6);
  s2.maybe_update(1, 1e6 * 1.05, 0.0);  // huge spike
  EXPECT_LT(s2.lambda(), l_flat);
}

TEST(Scheduler, StageAwareDefersUpdatesMidStage) {
  PlacerConfig cfg;  // stage_aware on, period 3
  Scheduler s(cfg, 1.0);
  s.init_lambda(1.0, 1.0, 1e6);
  // ω in the intermediate band: only every 3rd call updates.
  int updates = 0;
  for (int i = 0; i < 9; ++i) {
    if (s.maybe_update(i, 1e6, 0.7)) ++updates;
  }
  EXPECT_EQ(updates, 3);
  // Early stage (ω small): every call updates.
  updates = 0;
  for (int i = 0; i < 5; ++i) {
    if (s.maybe_update(i, 1e6, 0.01)) ++updates;
  }
  EXPECT_GE(updates, 4);  // first call may be mid-period
}

// ---------------- preconditioner ----------------

TEST(Preconditioner, OmegaMonotonicInLambda) {
  db::Database db = gp_design(300);
  db.insert_fillers(1);
  Preconditioner p(db);
  EXPECT_LT(p.omega(1e-6), 0.01);
  EXPECT_GT(p.omega(1e3), 0.95);
  EXPECT_LT(p.omega(0.01), p.omega(0.1));
  EXPECT_GE(p.omega(0.0), 0.0);
  EXPECT_LE(p.omega(1e12), 1.0);
}

TEST(Preconditioner, ApplyDividesByDiagonal) {
  db::Database db = gp_design(300);
  db.insert_fillers(1);
  Preconditioner p(db);
  const std::size_t n = db.num_cells_total();
  std::vector<float> gx(n, 2.0f), gy(n, -4.0f);
  p.apply(0.5f, gx.data(), gy.data(), true);
  for (std::size_t c = 0; c < n; ++c) {
    const float d = std::max(
        1.0f, static_cast<float>(db.cell_num_nets(c)) +
                  0.5f * static_cast<float>(db.area(c)));
    EXPECT_NEAR(gx[c], 2.0f / d, 1e-5f);
    EXPECT_NEAR(gy[c], -4.0f / d, 1e-5f);
  }
}

// ---------------- end-to-end GP ----------------

TEST(GlobalPlacer, XplaceModeConverges) {
  db::Database db = gp_design();
  GlobalPlacer placer(db, fast_cfg());
  const GlobalPlaceResult res = placer.run();
  EXPECT_LT(res.overflow, 0.10);
  EXPECT_GT(res.iterations, 50);
  // Overflow decreased dramatically from the clumped start.
  const auto& recs = placer.recorder().records();
  EXPECT_GT(recs.front().overflow, 0.8);
  // ω traverses the stages.
  EXPECT_LT(recs.front().omega, 0.05);
  EXPECT_GT(recs.back().omega, 0.9);
}

TEST(GlobalPlacer, DreamplaceModeConvergesToSimilarHpwl) {
  db::Database db1 = gp_design();
  GlobalPlacer p1(db1, fast_cfg());
  const GlobalPlaceResult r1 = p1.run();

  db::Database db2 = gp_design();
  GlobalPlacer p2(db2, fast_cfg(PlacerConfig::dreamplace()));
  const GlobalPlaceResult r2 = p2.run();

  EXPECT_LT(r2.overflow, 0.10);
  // Same algorithm, different execution: solutions within a few percent.
  EXPECT_NEAR(r1.hpwl, r2.hpwl, 0.10 * r2.hpwl);
}

TEST(GlobalPlacer, XplaceUsesFewerKernelLaunchesPerIter) {
  db::Database db1 = gp_design(600);
  PlacerConfig c1 = fast_cfg();
  c1.max_iters = 50;
  c1.stop_overflow = 0.0;  // force exactly 50 iterations
  GlobalPlacer p1(db1, c1);
  const GlobalPlaceResult r1 = p1.run();

  db::Database db2 = gp_design(600);
  PlacerConfig c2 = fast_cfg(PlacerConfig::dreamplace());
  c2.max_iters = 50;
  c2.stop_overflow = 0.0;
  GlobalPlacer p2(db2, c2);
  const GlobalPlaceResult r2 = p2.run();

  const double l1 = static_cast<double>(r1.kernel_launches) / r1.iterations;
  const double l2 = static_cast<double>(r2.kernel_launches) / r2.iterations;
  // The paper's operator reduction: the baseline graph runs ~3-5x more ops.
  EXPECT_LT(l1 * 2.5, l2) << "xplace " << l1 << " vs baseline " << l2;
}

TEST(GlobalPlacer, OperatorSkippingTriggersEarly) {
  db::Database db = gp_design();
  GlobalPlacer placer(db, fast_cfg());
  placer.run();
  std::size_t skipped = 0;
  for (const auto& rec : placer.recorder().records()) {
    if (rec.density_skipped) {
      ++skipped;
      EXPECT_LT(rec.iter, 100);  // only in the early stage
    }
  }
  EXPECT_GT(skipped, 10u);
}

TEST(GlobalPlacer, SkippingOffRunsDensityEveryIteration) {
  db::Database db = gp_design();
  PlacerConfig cfg = fast_cfg();
  cfg.op_skipping = false;
  GlobalPlacer placer(db, cfg);
  placer.run();
  for (const auto& rec : placer.recorder().records()) {
    EXPECT_FALSE(rec.density_skipped);
  }
}

TEST(GlobalPlacer, DeterministicAcrossRuns) {
  db::Database db1 = gp_design();
  PlacerConfig cfg = fast_cfg();
  cfg.max_iters = 60;
  cfg.stop_overflow = 0.0;
  GlobalPlacer p1(db1, cfg);
  const GlobalPlaceResult r1 = p1.run();

  db::Database db2 = gp_design();
  GlobalPlacer p2(db2, cfg);
  const GlobalPlaceResult r2 = p2.run();

  EXPECT_DOUBLE_EQ(r1.hpwl, r2.hpwl);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

TEST(GlobalPlacer, MovableCellsStayInRegion) {
  db::Database db = gp_design();
  PlacerConfig cfg = fast_cfg();
  cfg.max_iters = 200;
  GlobalPlacer placer(db, cfg);
  placer.run();
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    EXPECT_TRUE(db.region().contains(db.x(c), db.y(c))) << db.cell_name(c);
  }
}

TEST(GlobalPlacer, AblationTiersAllConverge) {
  // Each cumulative tier of Table 3 must still produce a valid placement.
  const bool tiers[4][4] = {
      {false, false, false, false},
      {true, false, false, false},
      {true, true, false, false},
      {true, true, true, false},
  };
  for (const auto& t : tiers) {
    db::Database db = gp_design(600, 9);
    PlacerConfig cfg = fast_cfg(PlacerConfig::ablation(t[0], t[1], t[2], t[3]));
    cfg.max_iters = 500;
    GlobalPlacer placer(db, cfg);
    const GlobalPlaceResult res = placer.run();
    EXPECT_LT(res.overflow, 0.15)
        << "tier OR=" << t[0] << " OC=" << t[1] << " OE=" << t[2];
  }
}

TEST(GlobalPlacer, AdamOptimizerAlsoSpreads) {
  db::Database db = gp_design(600, 11);
  PlacerConfig cfg = fast_cfg();
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.max_iters = 400;
  GlobalPlacer placer(db, cfg);
  const GlobalPlaceResult res = placer.run();
  // Adam converges slower; only require substantial spreading.
  EXPECT_LT(res.overflow, 0.5);
}

}  // namespace
}  // namespace xplace::core
